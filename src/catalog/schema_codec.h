#ifndef BULLFROG_CATALOG_SCHEMA_CODEC_H_
#define BULLFROG_CATALOG_SCHEMA_CODEC_H_

#include <string>

#include "catalog/schema.h"
#include "storage/value_codec.h"

namespace bullfrog {

/// Binary (de)serialization for table schemas and index definitions,
/// used by replicated DDL log records and checkpoint files. Everything a
/// TableSchema declares — columns (name/type/nullable), primary key,
/// unique constraints, foreign keys — round-trips, so a replica rebuilds
/// the exact logical table the primary created.
///
/// Format (little-endian, on top of storage/value_codec):
///   schema  = lp name | u32 ncols | ncols x (lp name | u8 type | u8 null)
///           | strvec pk | u32 nuniq | nuniq x (lp name | strvec cols)
///           | u32 nfk | nfk x (lp name | strvec cols | lp parent
///                              | strvec parent_cols)
///   index   = lp table | lp index_name | strvec cols | u8 unique
///           | u8 ordered
/// where lp = u32 len + bytes and strvec = u32 n + n x lp.
void EncodeTableSchema(std::string* out, const TableSchema& schema);
bool DecodeTableSchema(codec::ByteReader* reader, TableSchema* out);

/// Index definition blob: table, index name, columns, unique, ordered.
void EncodeIndexDef(std::string* out, const std::string& table,
                    const std::string& index_name,
                    const std::vector<std::string>& columns, bool unique,
                    bool ordered);
bool DecodeIndexDef(codec::ByteReader* reader, std::string* table,
                    std::string* index_name,
                    std::vector<std::string>* columns, bool* unique,
                    bool* ordered);

}  // namespace bullfrog

#endif  // BULLFROG_CATALOG_SCHEMA_CODEC_H_
