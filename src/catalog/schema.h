#ifndef BULLFROG_CATALOG_SCHEMA_H_
#define BULLFROG_CATALOG_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace bullfrog {

/// A column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
  bool nullable = true;
};

/// A FOREIGN KEY declaration: `columns` of this table must match the
/// `parent_columns` (a unique/PK key) of `parent_table`.
struct ForeignKey {
  std::string name;
  std::vector<std::string> columns;
  std::string parent_table;
  std::vector<std::string> parent_columns;
};

/// A UNIQUE constraint over one or more columns (the primary key is stored
/// separately but behaves like one of these).
struct UniqueConstraint {
  std::string name;
  std::vector<std::string> columns;
};

/// Logical description of one table: columns + declared constraints.
///
/// The schema does not enforce anything by itself — enforcement lives in
/// Table (unique via indexes) and in the constraint checker. Per §2.3, a
/// migration must re-declare any constraints wanted on the new schema; the
/// catalog never copies them implicitly.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Returns the positional index of `name`, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Returns the positional index of `name` or an InvalidArgument error
  /// naming the table — convenience for planner code.
  Result<size_t> RequireColumn(const std::string& name) const;

  /// Primary key column names (possibly empty = no PK).
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  void set_primary_key(std::vector<std::string> cols) {
    primary_key_ = std::move(cols);
  }
  /// Positional indices of the PK columns.
  std::vector<size_t> PrimaryKeyIndices() const;

  const std::vector<UniqueConstraint>& unique_constraints() const {
    return uniques_;
  }
  void AddUnique(UniqueConstraint u) { uniques_.push_back(std::move(u)); }

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  void AddForeignKey(ForeignKey fk) { foreign_keys_.push_back(std::move(fk)); }

  /// Validates that `t` positionally matches this schema (arity, types,
  /// null-ability). NULL is accepted for nullable columns of any type.
  Status ValidateTuple(const Tuple& t) const;

  /// Extracts the sub-tuple for the named columns (e.g. a key).
  Result<Tuple> Project(const Tuple& t,
                        const std::vector<std::string>& cols) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::string> primary_key_;
  std::vector<UniqueConstraint> uniques_;
  std::vector<ForeignKey> foreign_keys_;
};

/// Fluent builder used by DDL call-sites and tests.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string table_name) {
    schema_.set_name(std::move(table_name));
  }

  SchemaBuilder& AddColumn(std::string name, ValueType type,
                           bool nullable = true) {
    cols_.push_back(Column{std::move(name), type, nullable});
    return *this;
  }

  SchemaBuilder& SetPrimaryKey(std::vector<std::string> cols) {
    schema_.set_primary_key(std::move(cols));
    return *this;
  }

  SchemaBuilder& AddUnique(std::string name, std::vector<std::string> cols) {
    schema_.AddUnique(UniqueConstraint{std::move(name), std::move(cols)});
    return *this;
  }

  SchemaBuilder& AddForeignKey(std::string name,
                               std::vector<std::string> cols,
                               std::string parent,
                               std::vector<std::string> parent_cols) {
    schema_.AddForeignKey(ForeignKey{std::move(name), std::move(cols),
                                     std::move(parent),
                                     std::move(parent_cols)});
    return *this;
  }

  TableSchema Build() {
    TableSchema out = schema_;
    out = TableSchema(schema_.name(), cols_);
    out.set_primary_key(schema_.primary_key());
    for (const auto& u : schema_.unique_constraints()) out.AddUnique(u);
    for (const auto& fk : schema_.foreign_keys()) out.AddForeignKey(fk);
    return out;
  }

 private:
  TableSchema schema_;
  std::vector<Column> cols_;
};

}  // namespace bullfrog

#endif  // BULLFROG_CATALOG_SCHEMA_H_
