#include "catalog/schema_codec.h"

namespace bullfrog {
namespace {

void PutStringVec(std::string* out, const std::vector<std::string>& v) {
  codec::PutU32(out, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) codec::PutLenPrefixed(out, s);
}

bool GetStringVec(codec::ByteReader* reader, std::vector<std::string>* out) {
  uint32_t n;
  if (!reader->GetU32(&n)) return false;
  out->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!reader->GetLenPrefixed(&s)) return false;
    out->push_back(std::move(s));
  }
  return true;
}

}  // namespace

void EncodeTableSchema(std::string* out, const TableSchema& schema) {
  codec::PutLenPrefixed(out, schema.name());
  codec::PutU32(out, static_cast<uint32_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    codec::PutLenPrefixed(out, c.name);
    out->push_back(static_cast<char>(c.type));
    out->push_back(c.nullable ? 1 : 0);
  }
  PutStringVec(out, schema.primary_key());
  codec::PutU32(out,
                static_cast<uint32_t>(schema.unique_constraints().size()));
  for (const UniqueConstraint& u : schema.unique_constraints()) {
    codec::PutLenPrefixed(out, u.name);
    PutStringVec(out, u.columns);
  }
  codec::PutU32(out, static_cast<uint32_t>(schema.foreign_keys().size()));
  for (const ForeignKey& fk : schema.foreign_keys()) {
    codec::PutLenPrefixed(out, fk.name);
    PutStringVec(out, fk.columns);
    codec::PutLenPrefixed(out, fk.parent_table);
    PutStringVec(out, fk.parent_columns);
  }
}

bool DecodeTableSchema(codec::ByteReader* reader, TableSchema* out) {
  std::string name;
  uint32_t ncols;
  if (!reader->GetLenPrefixed(&name) || !reader->GetU32(&ncols)) return false;
  std::vector<Column> cols;
  for (uint32_t i = 0; i < ncols; ++i) {
    Column c;
    uint8_t type, nullable;
    if (!reader->GetLenPrefixed(&c.name) || !reader->GetU8(&type) ||
        !reader->GetU8(&nullable)) {
      return false;
    }
    c.type = static_cast<ValueType>(type);
    c.nullable = nullable != 0;
    cols.push_back(std::move(c));
  }
  TableSchema schema(std::move(name), std::move(cols));
  std::vector<std::string> pk;
  if (!GetStringVec(reader, &pk)) return false;
  schema.set_primary_key(std::move(pk));
  uint32_t nuniq;
  if (!reader->GetU32(&nuniq)) return false;
  for (uint32_t i = 0; i < nuniq; ++i) {
    UniqueConstraint u;
    if (!reader->GetLenPrefixed(&u.name) || !GetStringVec(reader, &u.columns)) {
      return false;
    }
    schema.AddUnique(std::move(u));
  }
  uint32_t nfk;
  if (!reader->GetU32(&nfk)) return false;
  for (uint32_t i = 0; i < nfk; ++i) {
    ForeignKey fk;
    if (!reader->GetLenPrefixed(&fk.name) || !GetStringVec(reader, &fk.columns) ||
        !reader->GetLenPrefixed(&fk.parent_table) ||
        !GetStringVec(reader, &fk.parent_columns)) {
      return false;
    }
    schema.AddForeignKey(std::move(fk));
  }
  *out = std::move(schema);
  return true;
}

void EncodeIndexDef(std::string* out, const std::string& table,
                    const std::string& index_name,
                    const std::vector<std::string>& columns, bool unique,
                    bool ordered) {
  codec::PutLenPrefixed(out, table);
  codec::PutLenPrefixed(out, index_name);
  PutStringVec(out, columns);
  out->push_back(unique ? 1 : 0);
  out->push_back(ordered ? 1 : 0);
}

bool DecodeIndexDef(codec::ByteReader* reader, std::string* table,
                    std::string* index_name,
                    std::vector<std::string>* columns, bool* unique,
                    bool* ordered) {
  uint8_t u, o;
  if (!reader->GetLenPrefixed(table) || !reader->GetLenPrefixed(index_name) ||
      !GetStringVec(reader, columns) || !reader->GetU8(&u) ||
      !reader->GetU8(&o)) {
    return false;
  }
  *unique = u != 0;
  *ordered = o != 0;
  return true;
}

}  // namespace bullfrog
