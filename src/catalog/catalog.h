#ifndef BULLFROG_CATALOG_CATALOG_H_
#define BULLFROG_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace bullfrog {

/// Lifecycle state of a table in the catalog.
///
/// The logical old->new switch at the heart of BullFrog (§2.1) is a pure
/// catalog operation: when a non-backwards-compatible ("big flip")
/// migration is submitted, input tables move to kRetired — client requests
/// against them are rejected, but migration workers may still read them —
/// and the new tables become kActive immediately, before any data moves.
enum class TableState : uint8_t {
  kActive,   ///< Part of the current schema; client requests allowed.
  kRetired,  ///< Old-schema table during/after a big-flip migration.
  kDropped,  ///< Fully migrated and logically deleted.
};

std::string_view TableStateName(TableState s);

/// The catalog: named tables, their lifecycle states, and a monotonically
/// increasing schema version. Thread-safe.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table under the given schema; becomes kActive at the
  /// current schema version.
  Result<Table*> CreateTable(TableSchema schema);

  /// Returns the table regardless of state, or nullptr.
  Table* FindTable(const std::string& name) const;

  /// Returns the table only if it is in the expected state; otherwise a
  /// descriptive error. Client request paths use RequireActive, migration
  /// workers use RequireReadable (kActive or kRetired).
  Result<Table*> RequireActive(const std::string& name) const;
  Result<Table*> RequireReadable(const std::string& name) const;

  TableState GetState(const std::string& name) const;

  /// Moves a table to kRetired (the big-flip half of SubmitMigration).
  Status RetireTable(const std::string& name);

  /// Moves a retired table to kDropped (migration complete, §2.2: "the old
  /// schema can be deleted"). The storage is retained (we do not reclaim)
  /// but no further access is permitted.
  Status DropTable(const std::string& name);

  /// Bumps and returns the schema version; called once per migration.
  uint64_t BumpSchemaVersion();
  uint64_t schema_version() const {
    std::shared_lock lock(mu_);
    return schema_version_;
  }

  /// Names of all tables in the given state.
  std::vector<std::string> TablesInState(TableState s) const;

  /// Wires every future table's inline version pruning to the snapshot
  /// watermark (Table::SetWatermarkSource). Call before creating tables.
  void SetWatermarkSource(const std::atomic<uint64_t>* source) {
    std::unique_lock lock(mu_);
    watermark_source_ = source;
  }

 private:
  struct Entry {
    std::unique_ptr<Table> table;
    TableState state = TableState::kActive;
    uint64_t created_at_version = 0;
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Entry> tables_;
  uint64_t schema_version_ = 0;
  const std::atomic<uint64_t>* watermark_source_ = nullptr;
};

}  // namespace bullfrog

#endif  // BULLFROG_CATALOG_CATALOG_H_
