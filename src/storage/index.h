#ifndef BULLFROG_STORAGE_INDEX_H_
#define BULLFROG_STORAGE_INDEX_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/tuple.h"

namespace bullfrog {

/// Physical kind of a secondary index.
enum class IndexKind : uint8_t {
  kHash,     ///< Equality lookups only.
  kOrdered,  ///< Equality + range lookups (std::multimap based).
};

/// A secondary index mapping a key (sub-tuple of the row) to RowIds.
///
/// Thread safety: all operations are internally synchronized. Hash indexes
/// are partitioned with per-partition latches; ordered indexes use a single
/// reader-writer latch (range scans need a consistent view).
///
/// Unique indexes support TryReserve — an atomic check-and-insert which is
/// the building block for both plain INSERT (reserve or fail) and the
/// paper's §3.7 ON CONFLICT DO NOTHING duplicate-migration detection
/// (reserve or silently skip).
class Index {
 public:
  Index(std::string name, std::vector<size_t> key_columns, bool unique)
      : name_(std::move(name)),
        key_columns_(std::move(key_columns)),
        unique_(unique) {}
  virtual ~Index() = default;

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }
  bool unique() const { return unique_; }
  virtual IndexKind kind() const = 0;

  /// Extracts this index's key from a full row.
  Tuple KeyFor(const Tuple& row) const {
    Tuple key;
    key.reserve(key_columns_.size());
    for (size_t c : key_columns_) key.push_back(row[c]);
    return key;
  }

  /// Inserts an entry. For unique indexes, fails with AlreadyExists when a
  /// different RowId already holds the key.
  virtual Status Insert(const Tuple& key, RowId rid) = 0;

  /// Atomically inserts if the key is absent. Returns true if inserted,
  /// false if an entry already existed (existing rid in *existing if
  /// non-null). Only meaningful for unique indexes.
  virtual Result<bool> TryReserve(const Tuple& key, RowId rid,
                                  RowId* existing) = 0;

  /// Removes the (key, rid) entry if present.
  virtual void Erase(const Tuple& key, RowId rid) = 0;

  /// Appends all RowIds with exactly this key to *out.
  virtual void Lookup(const Tuple& key, std::vector<RowId>* out) const = 0;

  /// Appends RowIds with keys in [lo, hi] (inclusive) to *out.
  /// Only supported by ordered indexes.
  virtual Status RangeLookup(const Tuple& lo, const Tuple& hi,
                             std::vector<RowId>* out) const = 0;

  /// Number of entries (approximate under concurrency).
  virtual size_t size() const = 0;

 private:
  std::string name_;
  std::vector<size_t> key_columns_;
  bool unique_;
};

/// Hash index partitioned into `stripes` shards, each an unordered_multimap
/// guarded by its own latch.
class HashIndex : public Index {
 public:
  HashIndex(std::string name, std::vector<size_t> key_columns, bool unique,
            size_t stripes = 64);

  IndexKind kind() const override { return IndexKind::kHash; }

  Status Insert(const Tuple& key, RowId rid) override;
  Result<bool> TryReserve(const Tuple& key, RowId rid,
                          RowId* existing) override;
  void Erase(const Tuple& key, RowId rid) override;
  void Lookup(const Tuple& key, std::vector<RowId>* out) const override;
  Status RangeLookup(const Tuple& lo, const Tuple& hi,
                     std::vector<RowId>* out) const override;
  size_t size() const override;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_multimap<Tuple, RowId, TupleHasher> map;
  };

  Shard& ShardFor(const Tuple& key) {
    return shards_[key.Hash() % shards_.size()];
  }
  const Shard& ShardFor(const Tuple& key) const {
    return shards_[key.Hash() % shards_.size()];
  }

  std::vector<Shard> shards_;
};

/// Ordered index backed by a B+-tree (storage/btree.h) under one
/// reader-writer latch (range scans need a stable view).
class OrderedIndex : public Index {
 public:
  OrderedIndex(std::string name, std::vector<size_t> key_columns, bool unique);

  IndexKind kind() const override { return IndexKind::kOrdered; }

  Status Insert(const Tuple& key, RowId rid) override;
  Result<bool> TryReserve(const Tuple& key, RowId rid,
                          RowId* existing) override;
  void Erase(const Tuple& key, RowId rid) override;
  void Lookup(const Tuple& key, std::vector<RowId>* out) const override;
  Status RangeLookup(const Tuple& lo, const Tuple& hi,
                     std::vector<RowId>* out) const override;
  size_t size() const override;

 private:
  mutable std::shared_mutex mu_;
  BTree tree_;
};

}  // namespace bullfrog

#endif  // BULLFROG_STORAGE_INDEX_H_
