#ifndef BULLFROG_STORAGE_TUPLE_H_
#define BULLFROG_STORAGE_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace bullfrog {

/// Identifies a row within a table. Row ids are dense, stable for the
/// lifetime of the table (rows never move), and double as the tuple index
/// in a migration bitmap — the analog of the prototype mapping PostgreSQL
/// TIDs to bitmap positions (§4).
using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = ~0ULL;

/// A row: a flat vector of values positionally matched to a TableSchema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  void push_back(Value v) { values_.push_back(std::move(v)); }
  void reserve(size_t n) { values_.reserve(n); }

  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }

  /// Combined hash of all cells; usable as a hash-map key.
  uint64_t Hash() const {
    uint64_t h = 1469598103934665603ULL;
    for (const Value& v : values_) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }

  std::string ToString() const {
    std::string out = "(";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    out += ")";
    return out;
  }

 private:
  std::vector<Value> values_;
};

struct TupleHasher {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};

}  // namespace bullfrog

#endif  // BULLFROG_STORAGE_TUPLE_H_
