#ifndef BULLFROG_STORAGE_BTREE_H_
#define BULLFROG_STORAGE_BTREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "storage/tuple.h"

namespace bullfrog {

/// An in-memory B+-tree multimap from Tuple keys to RowIds, the storage
/// structure behind OrderedIndex.
///
/// - Duplicate keys are supported; entries are made unique by ordering on
///   (key, rid).
/// - Leaves are linked left-to-right, so range scans stream in key order.
/// - NOT internally synchronized: OrderedIndex wraps it in a
///   reader-writer latch (range scans need a stable view anyway).
///
/// Keys compare cell-wise with prefix semantics: a shorter tuple sorts
/// before any of its extensions, which is what makes prefix range probes
/// (lo = hi = the prefix) work.
class BTree {
 public:
  BTree() = default;
  ~BTree() = default;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid). Duplicate (key, rid) pairs are ignored.
  /// Returns true if inserted.
  bool Insert(const Tuple& key, RowId rid);

  /// Removes (key, rid) if present. Returns true if removed.
  /// Deletion uses lazy underflow handling (entries are removed; nodes
  /// are freed only when fully empty) — simple and sufficient for an
  /// index whose table tombstones rows rather than compacting.
  bool Erase(const Tuple& key, RowId rid);

  /// Appends every rid whose key equals `key` (exactly) to *out.
  void Lookup(const Tuple& key, std::vector<RowId>* out) const;

  /// Invokes fn(key, rid) for every entry whose key is >= lo and whose
  /// prefix does not exceed hi (inclusive, prefix semantics — see
  /// OrderedIndex::RangeLookup). Stops early if fn returns false.
  void Range(const Tuple& lo, const Tuple& hi,
             const std::function<bool(const Tuple&, RowId)>& fn) const;

  /// Full in-order traversal.
  void ForEach(const std::function<bool(const Tuple&, RowId)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (0 for an empty tree); exposed for tests.
  int height() const;

  /// Validates the B+-tree invariants (ordering, fanout bounds, uniform
  /// leaf depth, linked-leaf order); exposed for tests. Returns false and
  /// stops at the first violation.
  bool CheckInvariants() const;

 private:
  // Fanout chosen small enough that tests exercise splits heavily and
  // large enough to keep the tree shallow for real tables.
  static constexpr int kMaxKeys = 32;

  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct Entry {
    Tuple key;
    RowId rid;
  };

  struct Node {
    bool leaf = true;
    // Leaves: entries.size() in [1, kMaxKeys] (root may be empty).
    std::vector<Entry> entries;
    // Internal: children.size() == separators.size() + 1; separator[i] is
    // the smallest (key, rid) in children[i + 1]'s subtree.
    std::vector<Entry> separators;
    std::vector<NodePtr> children;
    Node* next_leaf = nullptr;  // Leaf chain.
  };

  /// Total order on (key, rid) with cell-wise prefix key comparison.
  static int CompareKeyRid(const Tuple& a, RowId arid, const Tuple& b,
                           RowId brid);
  /// Key-only comparison (prefix semantics).
  static int CompareKeys(const Tuple& a, const Tuple& b);

  /// Descends to the leaf that would contain (key, rid).
  Node* FindLeaf(const Tuple& key, RowId rid) const;

  /// Splits `child` (children_[index] of `parent`), hoisting a separator.
  void SplitChild(Node* parent, size_t index);

  /// Inserts into a non-full subtree rooted at `node`.
  bool InsertNonFull(Node* node, const Tuple& key, RowId rid);

  NodePtr root_;
  size_t size_ = 0;
};

}  // namespace bullfrog

#endif  // BULLFROG_STORAGE_BTREE_H_
