#ifndef BULLFROG_STORAGE_VALUE_CODEC_H_
#define BULLFROG_STORAGE_VALUE_CODEC_H_

#include <cstdint>
#include <string>

#include "storage/value.h"

namespace bullfrog::codec {

/// Little-endian binary codec shared by the redo-log file format
/// (txn/log_file.cc) and the network wire protocol (server/protocol.h).
/// Values are encoded as: u8 type_tag | payload, with tags
///   0 = NULL, 1 = int64, 2 = double, 3 = string [u32 len + bytes],
///   4 = timestamp int64.

void PutU32(std::string* buf, uint32_t v);
void PutU64(std::string* buf, uint64_t v);
void PutValue(std::string* buf, const Value& v);
/// u32 length + raw bytes.
void PutLenPrefixed(std::string* buf, const std::string& s);

/// Cursor over a byte buffer; Get* return false on truncation or (for
/// GetValue) an unknown type tag, leaving the cursor position undefined.
struct ByteReader {
  const char* data;
  size_t size;
  size_t pos = 0;

  explicit ByteReader(const std::string& buf)
      : data(buf.data()), size(buf.size()) {}
  ByteReader(const char* d, size_t n) : data(d), size(n) {}

  size_t remaining() const { return size - pos; }

  bool GetBytes(void* out, size_t n);
  bool GetU8(uint8_t* v) { return GetBytes(v, 1); }
  bool GetU32(uint32_t* v) { return GetBytes(v, 4); }
  bool GetU64(uint64_t* v) { return GetBytes(v, 8); }
  bool GetString(std::string* out, size_t n);
  /// u32 length + raw bytes.
  bool GetLenPrefixed(std::string* out);
  bool GetValue(Value* out);
};

}  // namespace bullfrog::codec

#endif  // BULLFROG_STORAGE_VALUE_CODEC_H_
