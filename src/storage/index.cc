#include "storage/index.h"

#include <algorithm>

namespace bullfrog {

HashIndex::HashIndex(std::string name, std::vector<size_t> key_columns,
                     bool unique, size_t stripes)
    : Index(std::move(name), std::move(key_columns), unique),
      shards_(stripes) {}

Status HashIndex::Insert(const Tuple& key, RowId rid) {
  Shard& s = ShardFor(key);
  std::unique_lock lock(s.mu);
  if (unique()) {
    auto range = s.map.equal_range(key);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second != rid) {
        return Status::AlreadyExists("duplicate key " + key.ToString() +
                                     " in unique index '" + name() + "'");
      }
      return Status::OK();  // Idempotent re-insert of the same entry.
    }
  }
  s.map.emplace(key, rid);
  return Status::OK();
}

Result<bool> HashIndex::TryReserve(const Tuple& key, RowId rid,
                                   RowId* existing) {
  if (!unique()) {
    return Status::Unsupported("TryReserve requires a unique index");
  }
  Shard& s = ShardFor(key);
  std::unique_lock lock(s.mu);
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    if (existing != nullptr) *existing = it->second;
    return false;
  }
  s.map.emplace(key, rid);
  return true;
}

void HashIndex::Erase(const Tuple& key, RowId rid) {
  Shard& s = ShardFor(key);
  std::unique_lock lock(s.mu);
  auto range = s.map.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == rid) {
      s.map.erase(it);
      return;
    }
  }
}

void HashIndex::Lookup(const Tuple& key, std::vector<RowId>* out) const {
  const Shard& s = ShardFor(key);
  std::shared_lock lock(s.mu);
  auto range = s.map.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    out->push_back(it->second);
  }
}

Status HashIndex::RangeLookup(const Tuple&, const Tuple&,
                              std::vector<RowId>*) const {
  return Status::Unsupported("range lookup on hash index '" + name() + "'");
}

size_t HashIndex::size() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.mu);
    total += s.map.size();
  }
  return total;
}

OrderedIndex::OrderedIndex(std::string name, std::vector<size_t> key_columns,
                           bool unique)
    : Index(std::move(name), std::move(key_columns), unique) {}

Status OrderedIndex::Insert(const Tuple& key, RowId rid) {
  std::unique_lock lock(mu_);
  if (unique()) {
    std::vector<RowId> existing;
    tree_.Lookup(key, &existing);
    if (!existing.empty()) {
      if (existing.size() == 1 && existing[0] == rid) {
        return Status::OK();  // Idempotent re-insert of the same entry.
      }
      return Status::AlreadyExists("duplicate key " + key.ToString() +
                                   " in unique index '" + name() + "'");
    }
  }
  tree_.Insert(key, rid);
  return Status::OK();
}

Result<bool> OrderedIndex::TryReserve(const Tuple& key, RowId rid,
                                      RowId* existing) {
  if (!unique()) {
    return Status::Unsupported("TryReserve requires a unique index");
  }
  std::unique_lock lock(mu_);
  std::vector<RowId> found;
  tree_.Lookup(key, &found);
  if (!found.empty()) {
    if (existing != nullptr) *existing = found[0];
    return false;
  }
  tree_.Insert(key, rid);
  return true;
}

void OrderedIndex::Erase(const Tuple& key, RowId rid) {
  std::unique_lock lock(mu_);
  tree_.Erase(key, rid);
}

void OrderedIndex::Lookup(const Tuple& key, std::vector<RowId>* out) const {
  std::shared_lock lock(mu_);
  tree_.Lookup(key, out);
}

Status OrderedIndex::RangeLookup(const Tuple& lo, const Tuple& hi,
                                 std::vector<RowId>* out) const {
  std::shared_lock lock(mu_);
  tree_.Range(lo, hi, [&](const Tuple&, RowId rid) {
    out->push_back(rid);
    return true;
  });
  return Status::OK();
}

size_t OrderedIndex::size() const {
  std::shared_lock lock(mu_);
  return tree_.size();
}

}  // namespace bullfrog
