#include "storage/value_codec.h"

#include <cstring>

namespace bullfrog::codec {

void PutU32(std::string* buf, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf->append(b, 4);
}

void PutU64(std::string* buf, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf->append(b, 8);
}

void PutLenPrefixed(std::string* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->append(s);
}

void PutValue(std::string* buf, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      buf->push_back(0);
      break;
    case ValueType::kInt64: {
      buf->push_back(1);
      PutU64(buf, static_cast<uint64_t>(v.AsInt()));
      break;
    }
    case ValueType::kDouble: {
      buf->push_back(2);
      const double d = v.AsDouble();
      char b[8];
      std::memcpy(b, &d, 8);
      buf->append(b, 8);
      break;
    }
    case ValueType::kString: {
      buf->push_back(3);
      PutLenPrefixed(buf, v.AsString());
      break;
    }
    case ValueType::kTimestamp: {
      buf->push_back(4);
      PutU64(buf, static_cast<uint64_t>(v.AsTimestamp()));
      break;
    }
  }
}

bool ByteReader::GetBytes(void* out, size_t n) {
  if (n > size - pos) return false;
  std::memcpy(out, data + pos, n);
  pos += n;
  return true;
}

bool ByteReader::GetString(std::string* out, size_t n) {
  if (n > size - pos) return false;
  out->assign(data + pos, n);
  pos += n;
  return true;
}

bool ByteReader::GetLenPrefixed(std::string* out) {
  uint32_t n;
  return GetU32(&n) && GetString(out, n);
}

bool ByteReader::GetValue(Value* out) {
  uint8_t tag;
  if (!GetU8(&tag)) return false;
  switch (tag) {
    case 0:
      *out = Value::Null();
      return true;
    case 1: {
      uint64_t v;
      if (!GetU64(&v)) return false;
      *out = Value::Int(static_cast<int64_t>(v));
      return true;
    }
    case 2: {
      double d;
      if (!GetBytes(&d, 8)) return false;
      *out = Value::Double(d);
      return true;
    }
    case 3: {
      std::string s;
      if (!GetLenPrefixed(&s)) return false;
      *out = Value::Str(std::move(s));
      return true;
    }
    case 4: {
      uint64_t v;
      if (!GetU64(&v)) return false;
      *out = Value::Timestamp(static_cast<int64_t>(v));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace bullfrog::codec
