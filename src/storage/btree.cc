#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace bullfrog {

int BTree::CompareKeys(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

int BTree::CompareKeyRid(const Tuple& a, RowId arid, const Tuple& b,
                         RowId brid) {
  const int c = CompareKeys(a, b);
  if (c != 0) return c;
  if (arid < brid) return -1;
  if (arid > brid) return 1;
  return 0;
}

BTree::Node* BTree::FindLeaf(const Tuple& key, RowId rid) const {
  Node* node = root_.get();
  if (node == nullptr) return nullptr;
  while (!node->leaf) {
    size_t i = 0;
    while (i < node->separators.size() &&
           CompareKeyRid(key, rid, node->separators[i].key,
                         node->separators[i].rid) >= 0) {
      ++i;
    }
    node = node->children[i].get();
  }
  return node;
}

void BTree::SplitChild(Node* parent, size_t index) {
  Node* child = parent->children[index].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;

  if (child->leaf) {
    const size_t mid = child->entries.size() / 2;
    right->entries.assign(
        std::make_move_iterator(child->entries.begin() + mid),
        std::make_move_iterator(child->entries.end()));
    child->entries.resize(mid);
    right->next_leaf = child->next_leaf;
    child->next_leaf = right.get();
    // Separator: a copy of the right leaf's first entry.
    Entry sep{right->entries.front().key, right->entries.front().rid};
    parent->separators.insert(parent->separators.begin() + index,
                              std::move(sep));
  } else {
    const size_t mid = child->separators.size() / 2;
    Entry sep = std::move(child->separators[mid]);
    right->separators.assign(
        std::make_move_iterator(child->separators.begin() + mid + 1),
        std::make_move_iterator(child->separators.end()));
    child->separators.resize(mid);
    right->children.assign(
        std::make_move_iterator(child->children.begin() + mid + 1),
        std::make_move_iterator(child->children.end()));
    child->children.resize(mid + 1);
    parent->separators.insert(parent->separators.begin() + index,
                              std::move(sep));
  }
  parent->children.insert(parent->children.begin() + index + 1,
                          std::move(right));
}

bool BTree::InsertNonFull(Node* node, const Tuple& key, RowId rid) {
  if (node->leaf) {
    auto it = std::lower_bound(
        node->entries.begin(), node->entries.end(), 0,
        [&](const Entry& e, int) {
          return CompareKeyRid(e.key, e.rid, key, rid) < 0;
        });
    if (it != node->entries.end() &&
        CompareKeyRid(it->key, it->rid, key, rid) == 0) {
      return false;  // Duplicate (key, rid).
    }
    node->entries.insert(it, Entry{key, rid});
    return true;
  }
  size_t i = 0;
  while (i < node->separators.size() &&
         CompareKeyRid(key, rid, node->separators[i].key,
                       node->separators[i].rid) >= 0) {
    ++i;
  }
  Node* child = node->children[i].get();
  const size_t load =
      child->leaf ? child->entries.size() : child->separators.size();
  if (load >= kMaxKeys) {
    SplitChild(node, i);
    if (CompareKeyRid(key, rid, node->separators[i].key,
                      node->separators[i].rid) >= 0) {
      ++i;
    }
    child = node->children[i].get();
  }
  return InsertNonFull(child, key, rid);
}

bool BTree::Insert(const Tuple& key, RowId rid) {
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
  }
  const size_t root_load =
      root_->leaf ? root_->entries.size() : root_->separators.size();
  if (root_load >= kMaxKeys) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  const bool inserted = InsertNonFull(root_.get(), key, rid);
  if (inserted) ++size_;
  return inserted;
}

bool BTree::Erase(const Tuple& key, RowId rid) {
  Node* leaf = FindLeaf(key, rid);
  if (leaf == nullptr) return false;
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), 0,
      [&](const Entry& e, int) {
        return CompareKeyRid(e.key, e.rid, key, rid) < 0;
      });
  if (it == leaf->entries.end() ||
      CompareKeyRid(it->key, it->rid, key, rid) != 0) {
    return false;
  }
  leaf->entries.erase(it);
  --size_;
  // Lazy underflow: empty leaves are tolerated (they stay linked and are
  // skipped by scans). The tree stays correct; space is reclaimed when
  // the index is rebuilt.
  return true;
}

void BTree::Lookup(const Tuple& key, std::vector<RowId>* out) const {
  Range(key, key, [&](const Tuple& k, RowId rid) {
    if (CompareKeys(k, key) == 0) out->push_back(rid);
    return true;
  });
}

void BTree::Range(const Tuple& lo, const Tuple& hi,
                  const std::function<bool(const Tuple&, RowId)>& fn) const {
  if (root_ == nullptr) return;
  // Start at the first entry with key >= lo (rid 0 = smallest).
  Node* leaf = FindLeaf(lo, 0);
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      if (CompareKeys(e.key, lo) < 0) continue;
      // Prefix-inclusive upper bound: stop once the first min(|k|, |hi|)
      // cells exceed hi.
      bool greater = false;
      const size_t n = std::min(e.key.size(), hi.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = e.key[i].Compare(hi[i]);
        if (c > 0) {
          greater = true;
          break;
        }
        if (c < 0) break;
      }
      if (greater) return;
      if (!fn(e.key, e.rid)) return;
    }
    leaf = leaf->next_leaf;
  }
}

void BTree::ForEach(
    const std::function<bool(const Tuple&, RowId)>& fn) const {
  if (root_ == nullptr) return;
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    for (const Entry& e : leaf->entries) {
      if (!fn(e.key, e.rid)) return;
    }
  }
}

int BTree::height() const {
  if (root_ == nullptr) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BTree::CheckInvariants() const {
  if (root_ == nullptr) return true;
  // 1. Uniform leaf depth + fanout bounds + separator ordering.
  bool ok = true;
  int leaf_depth = -1;
  std::function<void(const Node*, int)> visit = [&](const Node* node,
                                                    int depth) {
    if (!ok) return;
    if (node->leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (leaf_depth != depth) ok = false;
      for (size_t i = 1; i < node->entries.size(); ++i) {
        if (CompareKeyRid(node->entries[i - 1].key, node->entries[i - 1].rid,
                          node->entries[i].key, node->entries[i].rid) >= 0) {
          ok = false;
        }
      }
      if (node->entries.size() > kMaxKeys) ok = false;
      return;
    }
    if (node->children.size() != node->separators.size() + 1) {
      ok = false;
      return;
    }
    if (node->separators.size() > kMaxKeys) ok = false;
    for (size_t i = 1; i < node->separators.size(); ++i) {
      if (CompareKeyRid(node->separators[i - 1].key,
                        node->separators[i - 1].rid, node->separators[i].key,
                        node->separators[i].rid) >= 0) {
        ok = false;
      }
    }
    for (const NodePtr& child : node->children) {
      visit(child.get(), depth + 1);
    }
  };
  visit(root_.get(), 0);
  if (!ok) return false;

  // 2. Leaf chain yields a globally sorted sequence with size() entries.
  size_t count = 0;
  bool has_prev = false;
  Tuple prev_key;
  RowId prev_rid = 0;
  bool sorted = true;
  ForEach([&](const Tuple& k, RowId rid) {
    if (has_prev && CompareKeyRid(prev_key, prev_rid, k, rid) >= 0) {
      sorted = false;
      return false;
    }
    prev_key = k;
    prev_rid = rid;
    has_prev = true;
    ++count;
    return true;
  });
  return sorted && count == size_;
}

}  // namespace bullfrog
