#ifndef BULLFROG_STORAGE_TABLE_H_
#define BULLFROG_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/latch.h"
#include "common/result.h"
#include "common/status.h"
#include "mvcc/version.h"
#include "storage/index.h"
#include "storage/tuple.h"

namespace bullfrog {

/// Conflict policy for inserts hitting a unique index.
enum class OnConflict : uint8_t {
  kError,      ///< Plain INSERT: duplicate key is an AlreadyExists error.
  kDoNothing,  ///< INSERT ... ON CONFLICT DO NOTHING (§3.7).
};

/// Outcome of an insert.
struct InsertOutcome {
  RowId rid = kInvalidRowId;
  bool inserted = false;  ///< false only under OnConflict::kDoNothing.
};

/// An in-memory heap table: a segmented, append-only array of row slots,
/// each slot heading a newest-first chain of row versions (mvcc/).
///
/// Properties the migration layer relies on (mirroring the role PostgreSQL
/// TIDs play in the original prototype, §4):
///  - RowIds are dense (0..NumAllocatedRows) and stable — rows never move,
///    deletion installs a tombstone version. A RowId is therefore directly
///    usable as a position in a migration bitmap.
///  - Physical operations are individually atomic (per-slot latch).
///
/// Versioning. A write installs a new head version rather than updating in
/// place: pending (commit_ts unset) when issued by a transaction, stamped
/// at commit; immediately committed for non-transactional callers (bulk
/// load, replay). The default Read/Scan paths see the head version
/// regardless of commit state — the engine's historical read-committed-ish
/// contract — while the *At variants resolve a ReadView against the chain
/// for snapshot-isolation reads. Undoing a transactional write unlinks its
/// pending head version (UndoInstall).
///
/// Index maintenance is performed inside the physical operations against
/// the latest version, so index state always matches the head of the heap;
/// snapshot readers that probe an index must re-apply their full predicate
/// (see query/scan.cc).
class Table {
 public:
  explicit Table(TableSchema schema);
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// --- Index DDL -----------------------------------------------------

  /// Creates an index over `columns`; backfills from existing rows.
  /// Fails with AlreadyExists for duplicate names, ConstraintViolation if a
  /// unique index backfill discovers duplicates.
  Status CreateIndex(const std::string& name,
                     const std::vector<std::string>& columns, bool unique,
                     IndexKind kind);

  /// Returns the index with this name, or nullptr.
  Index* FindIndex(const std::string& name) const;

  /// Returns an index whose key columns exactly match `columns`
  /// (positional order-sensitive), or nullptr.
  Index* FindIndexOn(const std::vector<std::string>& columns) const;

  /// Returns an index whose key is a prefix of usable equality columns —
  /// i.e. all of the index's key columns appear in `eq_columns`.
  Index* FindIndexCoveredBy(const std::vector<size_t>& eq_columns) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// --- Physical DML (used by the txn layer and bulk loaders) ---------
  ///
  /// `writer_txn` == 0 installs an immediately committed version
  /// (kBootstrapTs); a nonzero id installs a pending version owned by
  /// that transaction, reported through *installed so the caller can
  /// stamp it at commit or unlink it on abort.

  /// Validates + inserts. On unique violation with kError, no change is
  /// made; with kDoNothing, outcome.inserted == false.
  Result<InsertOutcome> Insert(const Tuple& row,
                               OnConflict policy = OnConflict::kError,
                               uint64_t writer_txn = 0,
                               mvcc::RowVersion** installed = nullptr);

  /// Reads the latest version into *out. NotFound for tombstoned or
  /// never-allocated ids.
  Status Read(RowId rid, Tuple* out) const;

  /// Reads the newest version visible to `view`.
  Status ReadAt(RowId rid, const mvcc::ReadView& view, Tuple* out) const;

  /// Installs a new version of the row, returning the latest before-image.
  /// The caller is expected to hold a logical row lock; the slot latch
  /// only protects against torn reads. Unique-key updates re-reserve the
  /// new key.
  Status Update(RowId rid, const Tuple& new_row, Tuple* before,
                uint64_t writer_txn = 0,
                mvcc::RowVersion** installed = nullptr);

  /// Installs a tombstone version, returning the before-image.
  Status Delete(RowId rid, Tuple* before, uint64_t writer_txn = 0,
                mvcc::RowVersion** installed = nullptr);

  /// Re-inserts a previously deleted row into the same slot (undo of
  /// Delete / redo of a recovered insert into a known slot).
  Status Restore(RowId rid, const Tuple& row);

  /// Restore into a slot that may not have been allocated yet: allocates
  /// every segment through `rid` and advances the rid horizon past it
  /// first. Used by physical replay (replica apply, checkpoint-relative
  /// recovery), where the primary dictates rid placement and gaps —
  /// aborted transactions, ON CONFLICT tombstones — never reach the log.
  Status RestoreAt(RowId rid, const Tuple& row);

  /// Replay-only: replaces the row like Update but without requiring the
  /// slot to be live (restores it when needed). Used when a checkpoint
  /// snapshot and the WAL suffix overlap — re-applying an insert that the
  /// snapshot already contains must be idempotent.
  Status ForceApply(RowId rid, const Tuple& row);

  /// Unlinks a pending version installed by an aborting transaction and
  /// reverses its index effects. `v` must be the slot's head (strict 2PL
  /// guarantees nobody stacked a version on top of an uncommitted one).
  Status UndoInstall(RowId rid, mvcc::RowVersion* v);

  /// Raises the allocated-row horizon to at least `n`, materializing the
  /// covering segments (all-tombstone). Checkpoint restore uses this so a
  /// table's NumAllocatedRows matches the primary even when the tail rows
  /// are tombstones.
  void ReserveRows(uint64_t n);

  /// --- Scans ----------------------------------------------------------

  /// Invokes fn(rid, row) for every live row (latest version). The
  /// callback receives a consistent copy of each row; the scan as a whole
  /// is not a snapshot. If fn returns false the scan stops early.
  void Scan(const std::function<bool(RowId, const Tuple&)>& fn) const;

  /// Like Scan but restricted to allocated RowIds in [begin, end).
  void ScanRange(RowId begin, RowId end,
                 const std::function<bool(RowId, const Tuple&)>& fn) const;

  /// Reads each rid in `rids`, skipping tombstones.
  void ReadMany(const std::vector<RowId>& rids,
                const std::function<bool(RowId, const Tuple&)>& fn) const;

  /// Snapshot variants: visit the version visible to `view` instead of
  /// the head. Each row is consistent at view.ts; the whole scan is a
  /// snapshot as long as view.ts stays pinned (SnapshotManager::Pin).
  void ScanAt(const mvcc::ReadView& view,
              const std::function<bool(RowId, const Tuple&)>& fn) const;
  void ScanRangeAt(const mvcc::ReadView& view, RowId begin, RowId end,
                   const std::function<bool(RowId, const Tuple&)>& fn) const;
  void ReadManyAt(const mvcc::ReadView& view, const std::vector<RowId>& rids,
                  const std::function<bool(RowId, const Tuple&)>& fn) const;

  /// --- Version GC ------------------------------------------------------

  /// Frees versions shadowed below `watermark` (see mvcc/gc.h). Returns
  /// the number of versions freed; *max_chain, when non-null, receives
  /// the longest chain observed before pruning.
  uint64_t PruneVersions(uint64_t watermark, uint64_t* max_chain = nullptr);

  /// Wires the write path's inline chain pruning to the snapshot
  /// watermark. Called by the catalog at table creation; tables without a
  /// source skip inline pruning.
  void SetWatermarkSource(const std::atomic<uint64_t>* source) {
    watermark_source_ = source;
  }

  /// --- Stats ----------------------------------------------------------

  /// Number of slots ever allocated (upper bound for RowIds); includes
  /// tombstones. This is the domain of a migration bitmap.
  uint64_t NumAllocatedRows() const {
    return next_rid_.load(std::memory_order_acquire);
  }

  /// Number of live (non-tombstoned, latest-version) rows.
  uint64_t NumLiveRows() const {
    return live_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct RowSlot {
    mutable SpinLatch latch;
    mvcc::RowVersion* head = nullptr;
  };

  static constexpr size_t kSegmentBits = 12;  // 4096 rows per segment.
  static constexpr size_t kSegmentSize = 1ULL << kSegmentBits;
  // Fixed segment directory: 1<<16 segments x 4096 rows = 268M rows max.
  // A directory of atomic pointers lets readers resolve slots latch-free.
  static constexpr size_t kMaxSegments = 1ULL << 16;

  struct Segment {
    std::vector<RowSlot> slots{kSegmentSize};
  };

  RowSlot* SlotFor(RowId rid) const;

  /// Reserves a fresh RowId and returns its (latch-free) slot.
  std::pair<RowId, RowSlot*> AllocateSlot();

  /// Links a fresh version at the head of the slot's chain (caller holds
  /// the latch) and prunes the chain against the watermark source.
  mvcc::RowVersion* InstallLocked(RowSlot* slot, Tuple data, bool deleted,
                                  uint64_t writer_txn);
  /// Prunes one chain under its latch; returns versions freed.
  uint64_t PruneChainLocked(RowSlot* slot, uint64_t watermark,
                            uint64_t* chain_len = nullptr);

  Status InsertIndexEntries(const Tuple& row, RowId rid, OnConflict policy,
                            bool* conflicted, RowId* existing_rid);
  void EraseIndexEntries(const Tuple& row, RowId rid);

  TableSchema schema_;
  std::vector<std::unique_ptr<Index>> indexes_;

  std::mutex grow_mu_;  // Serializes segment allocation only.
  std::vector<std::atomic<Segment*>> segments_;
  std::atomic<uint64_t> next_rid_{0};
  std::atomic<uint64_t> live_rows_{0};
  const std::atomic<uint64_t>* watermark_source_ = nullptr;
};

}  // namespace bullfrog

#endif  // BULLFROG_STORAGE_TABLE_H_
