#ifndef BULLFROG_STORAGE_VALUE_H_
#define BULLFROG_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace bullfrog {

/// Column/value types supported by the storage engine. Deliberately small:
/// TPC-C and the paper's migrations only require integers, decimals
/// (modeled as double), fixed/variable strings and timestamps (int64
/// microseconds).
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kTimestamp,  ///< int64 microseconds since epoch.
};

std::string_view ValueTypeName(ValueType t);

/// A dynamically typed cell value. Small, copyable, hashable, ordered.
///
/// NULL ordering follows SQL-ish semantics for our internal purposes:
/// NULL compares equal to NULL and less than everything else (this makes
/// NULLs usable in ordered index keys); predicate evaluation layers
/// three-valued logic on top where required.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(std::in_place_index<1>, v)); }
  static Value Double(double v) {
    return Value(Repr(std::in_place_index<2>, v));
  }
  static Value Str(std::string v) {
    return Value(Repr(std::in_place_index<3>, std::move(v)));
  }
  static Value Timestamp(int64_t micros) {
    return Value(Repr(std::in_place_index<4>, micros));
  }

  ValueType type() const {
    switch (repr_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      case 3:
        return ValueType::kString;
      case 4:
        return ValueType::kTimestamp;
    }
    return ValueType::kNull;
  }

  bool is_null() const { return repr_.index() == 0; }

  int64_t AsInt() const { return std::get<1>(repr_); }
  double AsDouble() const {
    if (repr_.index() == 1) return static_cast<double>(std::get<1>(repr_));
    return std::get<2>(repr_);
  }
  const std::string& AsString() const { return std::get<3>(repr_); }
  int64_t AsTimestamp() const { return std::get<4>(repr_); }

  /// Total order used by ordered indexes and comparisons. NULL < non-NULL;
  /// ints and doubles compare numerically with each other.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable hash, consistent with operator== (ints and timestamps that
  /// compare equal hash equally; int/double cross-type equality is only
  /// used in predicate evaluation, not as hash keys).
  uint64_t Hash() const;

  /// Debug rendering; strings are quoted.
  std::string ToString() const;

 private:
  using Repr =
      std::variant<std::monostate, int64_t, double, std::string, int64_t>;
  // Note: kInt64 is index 1 and kTimestamp is index 4; both hold int64_t,
  // distinguished by variant index.
  explicit Value(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

struct ValueHasher {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace bullfrog

#endif  // BULLFROG_STORAGE_VALUE_H_
