#include "storage/table.h"

#include <algorithm>

namespace bullfrog {

Table::Table(TableSchema schema)
    : schema_(std::move(schema)), segments_(kMaxSegments) {
  // The primary key, if declared, is backed by a unique hash index so that
  // point lookups and uniqueness enforcement are O(1).
  if (!schema_.primary_key().empty()) {
    Status s = CreateIndex("pk_" + schema_.name(), schema_.primary_key(),
                           /*unique=*/true, IndexKind::kHash);
    (void)s;  // Cannot fail on an empty table with valid PK columns.
  }
  for (const UniqueConstraint& u : schema_.unique_constraints()) {
    (void)CreateIndex(u.name, u.columns, /*unique=*/true, IndexKind::kHash);
  }
}

Table::~Table() {
  for (auto& seg : segments_) {
    delete seg.load(std::memory_order_acquire);
  }
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& columns, bool unique,
                          IndexKind kind) {
  if (FindIndex(name) != nullptr) {
    return Status::AlreadyExists("index '" + name + "' already exists on '" +
                                 schema_.name() + "'");
  }
  std::vector<size_t> cols;
  cols.reserve(columns.size());
  for (const std::string& c : columns) {
    BF_ASSIGN_OR_RETURN(size_t idx, schema_.RequireColumn(c));
    cols.push_back(idx);
  }
  std::unique_ptr<Index> index;
  if (kind == IndexKind::kHash) {
    index = std::make_unique<HashIndex>(name, cols, unique);
  } else {
    index = std::make_unique<OrderedIndex>(name, cols, unique);
  }
  // Backfill from live rows.
  Status backfill = Status::OK();
  Scan([&](RowId rid, const Tuple& row) {
    Status s = index->Insert(index->KeyFor(row), rid);
    if (!s.ok()) {
      backfill = Status::ConstraintViolation(
          "index backfill failed on '" + name + "': " + s.message());
      return false;
    }
    return true;
  });
  BF_RETURN_NOT_OK(backfill);
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Index* Table::FindIndex(const std::string& name) const {
  for (const auto& idx : indexes_) {
    if (idx->name() == name) return idx.get();
  }
  return nullptr;
}

Index* Table::FindIndexOn(const std::vector<std::string>& columns) const {
  std::vector<size_t> cols;
  for (const std::string& c : columns) {
    auto idx = schema_.ColumnIndex(c);
    if (!idx) return nullptr;
    cols.push_back(*idx);
  }
  for (const auto& index : indexes_) {
    if (index->key_columns() == cols) return index.get();
  }
  return nullptr;
}

Index* Table::FindIndexCoveredBy(const std::vector<size_t>& eq_columns) const {
  Index* best = nullptr;
  for (const auto& index : indexes_) {
    bool covered = true;
    for (size_t kc : index->key_columns()) {
      if (std::find(eq_columns.begin(), eq_columns.end(), kc) ==
          eq_columns.end()) {
        covered = false;
        break;
      }
    }
    if (!covered) continue;
    // Prefer the index with the most key columns (most selective), and
    // unique over non-unique on ties.
    if (best == nullptr ||
        index->key_columns().size() > best->key_columns().size() ||
        (index->key_columns().size() == best->key_columns().size() &&
         index->unique() && !best->unique())) {
      best = index.get();
    }
  }
  return best;
}

Table::RowSlot* Table::SlotFor(RowId rid) const {
  const size_t seg = rid >> kSegmentBits;
  const size_t off = rid & (kSegmentSize - 1);
  if (seg >= kMaxSegments) return nullptr;
  Segment* s = segments_[seg].load(std::memory_order_acquire);
  if (s == nullptr) return nullptr;
  return &s->slots[off];
}

std::pair<RowId, Table::RowSlot*> Table::AllocateSlot() {
  const RowId rid = next_rid_.fetch_add(1, std::memory_order_acq_rel);
  const size_t seg = rid >> kSegmentBits;
  const size_t off = rid & (kSegmentSize - 1);
  Segment* s = segments_[seg].load(std::memory_order_acquire);
  if (s == nullptr) {
    std::lock_guard lock(grow_mu_);
    s = segments_[seg].load(std::memory_order_acquire);
    if (s == nullptr) {
      auto fresh = std::make_unique<Segment>();
      s = fresh.release();
      segments_[seg].store(s, std::memory_order_release);
    }
  }
  return {rid, &s->slots[off]};
}

Status Table::InsertIndexEntries(const Tuple& row, RowId rid,
                                 OnConflict policy, bool* conflicted,
                                 RowId* existing_rid) {
  *conflicted = false;
  // Unique indexes are reserved first (in creation order, so concurrent
  // inserters use the same order and cannot deadlock); on a later failure
  // the earlier reservations are rolled back.
  std::vector<Index*> done;
  for (const auto& index : indexes_) {
    const Tuple key = index->KeyFor(row);
    if (index->unique()) {
      RowId existing = kInvalidRowId;
      auto reserved = index->TryReserve(key, rid, &existing);
      if (!reserved.ok()) return reserved.status();
      if (!*reserved) {
        for (Index* d : done) d->Erase(d->KeyFor(row), rid);
        *conflicted = true;
        if (existing_rid != nullptr) *existing_rid = existing;
        if (policy == OnConflict::kDoNothing) return Status::OK();
        return Status::AlreadyExists("duplicate key " + key.ToString() +
                                     " in unique index '" + index->name() +
                                     "' of table '" + schema_.name() + "'");
      }
    } else {
      BF_RETURN_NOT_OK(index->Insert(key, rid));
    }
    done.push_back(index.get());
  }
  return Status::OK();
}

void Table::EraseIndexEntries(const Tuple& row, RowId rid) {
  for (const auto& index : indexes_) {
    index->Erase(index->KeyFor(row), rid);
  }
}

Result<InsertOutcome> Table::Insert(const Tuple& row, OnConflict policy) {
  BF_RETURN_NOT_OK(schema_.ValidateTuple(row));

  // Reserve the slot first so unique-index reservations can point at it.
  auto [rid, slot] = AllocateSlot();
  bool conflicted = false;
  RowId existing = kInvalidRowId;
  Status s = InsertIndexEntries(row, rid, policy, &conflicted, &existing);
  if (!s.ok()) return s;
  if (conflicted) {
    // kDoNothing path: the allocated slot stays a tombstone forever; this
    // wastes one bitmap position, which is harmless (tombstones are
    // trivially "migrated").
    return InsertOutcome{existing, false};
  }
  {
    std::lock_guard latch(slot->latch);
    slot->data = row;
    slot->live = true;
  }
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  return InsertOutcome{rid, true};
}

Status Table::Read(RowId rid, Tuple* out) const {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid " + std::to_string(rid) +
                            " out of range in '" + schema_.name() + "'");
  }
  std::lock_guard latch(slot->latch);
  if (!slot->live) {
    return Status::NotFound("rid " + std::to_string(rid) + " deleted in '" +
                            schema_.name() + "'");
  }
  *out = slot->data;
  return Status::OK();
}

Status Table::Update(RowId rid, const Tuple& new_row, Tuple* before) {
  BF_RETURN_NOT_OK(schema_.ValidateTuple(new_row));
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid out of range in '" + schema_.name() + "'");
  }
  Tuple old_row;
  {
    std::lock_guard latch(slot->latch);
    if (!slot->live) {
      return Status::NotFound("rid " + std::to_string(rid) + " deleted in '" +
                              schema_.name() + "'");
    }
    old_row = slot->data;
  }
  // Maintain indexes whose keys changed. Reserve new unique keys before
  // erasing old ones so a concurrent duplicate cannot slip in.
  for (const auto& index : indexes_) {
    const Tuple old_key = index->KeyFor(old_row);
    const Tuple new_key = index->KeyFor(new_row);
    if (old_key == new_key) continue;
    if (index->unique()) {
      RowId existing = kInvalidRowId;
      auto reserved = index->TryReserve(new_key, rid, &existing);
      if (!reserved.ok()) return reserved.status();
      if (!*reserved) {
        return Status::AlreadyExists("update would duplicate key " +
                                     new_key.ToString() + " in '" +
                                     index->name() + "'");
      }
    } else {
      BF_RETURN_NOT_OK(index->Insert(new_key, rid));
    }
    index->Erase(old_key, rid);
  }
  {
    std::lock_guard latch(slot->latch);
    if (before != nullptr) *before = slot->data;
    slot->data = new_row;
  }
  return Status::OK();
}

Status Table::Delete(RowId rid, Tuple* before) {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid out of range in '" + schema_.name() + "'");
  }
  Tuple old_row;
  {
    std::lock_guard latch(slot->latch);
    if (!slot->live) {
      return Status::NotFound("rid " + std::to_string(rid) + " deleted in '" +
                              schema_.name() + "'");
    }
    old_row = slot->data;
    slot->live = false;
  }
  EraseIndexEntries(old_row, rid);
  live_rows_.fetch_sub(1, std::memory_order_relaxed);
  if (before != nullptr) *before = old_row;
  return Status::OK();
}

Status Table::Restore(RowId rid, const Tuple& row) {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid out of range in '" + schema_.name() + "'");
  }
  {
    std::lock_guard latch(slot->latch);
    if (slot->live) {
      return Status::AlreadyExists("rid " + std::to_string(rid) +
                                   " is live in '" + schema_.name() + "'");
    }
    slot->data = row;
    slot->live = true;
  }
  for (const auto& index : indexes_) {
    (void)index->Insert(index->KeyFor(row), rid);
  }
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Table::ReserveRows(uint64_t n) {
  if (n == 0) return;
  const size_t last_seg = (n - 1) >> kSegmentBits;
  std::lock_guard lock(grow_mu_);
  for (size_t seg = 0; seg <= last_seg && seg < kMaxSegments; ++seg) {
    if (segments_[seg].load(std::memory_order_acquire) == nullptr) {
      auto fresh = std::make_unique<Segment>();
      segments_[seg].store(fresh.release(), std::memory_order_release);
    }
  }
  uint64_t cur = next_rid_.load(std::memory_order_acquire);
  while (cur < n &&
         !next_rid_.compare_exchange_weak(cur, n, std::memory_order_acq_rel)) {
  }
}

Status Table::RestoreAt(RowId rid, const Tuple& row) {
  ReserveRows(rid + 1);
  return Restore(rid, row);
}

void Table::Scan(const std::function<bool(RowId, const Tuple&)>& fn) const {
  ScanRange(0, NumAllocatedRows(), fn);
}

void Table::ScanRange(
    RowId begin, RowId end,
    const std::function<bool(RowId, const Tuple&)>& fn) const {
  const RowId limit = std::min<RowId>(end, NumAllocatedRows());
  for (RowId rid = begin; rid < limit; ++rid) {
    RowSlot* slot = SlotFor(rid);
    if (slot == nullptr) return;
    Tuple copy;
    bool live;
    {
      std::lock_guard latch(slot->latch);
      live = slot->live;
      if (live) copy = slot->data;
    }
    if (live && !fn(rid, copy)) return;
  }
}

void Table::ReadMany(
    const std::vector<RowId>& rids,
    const std::function<bool(RowId, const Tuple&)>& fn) const {
  for (RowId rid : rids) {
    Tuple row;
    if (Read(rid, &row).ok()) {
      if (!fn(rid, row)) return;
    }
  }
}

}  // namespace bullfrog
