#include "storage/table.h"

#include <algorithm>

namespace bullfrog {

namespace {

/// Frees a chain starting at `v` (exclusive of nothing — frees v too).
uint64_t FreeChain(mvcc::RowVersion* v) {
  uint64_t freed = 0;
  while (v != nullptr) {
    mvcc::RowVersion* next = v->older;
    delete v;
    v = next;
    ++freed;
  }
  return freed;
}

bool HeadLive(const mvcc::RowVersion* head) {
  return head != nullptr && !head->deleted;
}

}  // namespace

Table::Table(TableSchema schema)
    : schema_(std::move(schema)), segments_(kMaxSegments) {
  // The primary key, if declared, is backed by a unique hash index so that
  // point lookups and uniqueness enforcement are O(1).
  if (!schema_.primary_key().empty()) {
    Status s = CreateIndex("pk_" + schema_.name(), schema_.primary_key(),
                           /*unique=*/true, IndexKind::kHash);
    (void)s;  // Cannot fail on an empty table with valid PK columns.
  }
  for (const UniqueConstraint& u : schema_.unique_constraints()) {
    (void)CreateIndex(u.name, u.columns, /*unique=*/true, IndexKind::kHash);
  }
}

Table::~Table() {
  const uint64_t limit = NumAllocatedRows();
  for (RowId rid = 0; rid < limit; ++rid) {
    RowSlot* slot = SlotFor(rid);
    if (slot != nullptr) FreeChain(slot->head);
  }
  for (auto& seg : segments_) {
    delete seg.load(std::memory_order_acquire);
  }
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& columns, bool unique,
                          IndexKind kind) {
  if (FindIndex(name) != nullptr) {
    return Status::AlreadyExists("index '" + name + "' already exists on '" +
                                 schema_.name() + "'");
  }
  std::vector<size_t> cols;
  cols.reserve(columns.size());
  for (const std::string& c : columns) {
    BF_ASSIGN_OR_RETURN(size_t idx, schema_.RequireColumn(c));
    cols.push_back(idx);
  }
  std::unique_ptr<Index> index;
  if (kind == IndexKind::kHash) {
    index = std::make_unique<HashIndex>(name, cols, unique);
  } else {
    index = std::make_unique<OrderedIndex>(name, cols, unique);
  }
  // Backfill from live rows.
  Status backfill = Status::OK();
  Scan([&](RowId rid, const Tuple& row) {
    Status s = index->Insert(index->KeyFor(row), rid);
    if (!s.ok()) {
      backfill = Status::ConstraintViolation(
          "index backfill failed on '" + name + "': " + s.message());
      return false;
    }
    return true;
  });
  BF_RETURN_NOT_OK(backfill);
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Index* Table::FindIndex(const std::string& name) const {
  for (const auto& idx : indexes_) {
    if (idx->name() == name) return idx.get();
  }
  return nullptr;
}

Index* Table::FindIndexOn(const std::vector<std::string>& columns) const {
  std::vector<size_t> cols;
  for (const std::string& c : columns) {
    auto idx = schema_.ColumnIndex(c);
    if (!idx) return nullptr;
    cols.push_back(*idx);
  }
  for (const auto& index : indexes_) {
    if (index->key_columns() == cols) return index.get();
  }
  return nullptr;
}

Index* Table::FindIndexCoveredBy(const std::vector<size_t>& eq_columns) const {
  Index* best = nullptr;
  for (const auto& index : indexes_) {
    bool covered = true;
    for (size_t kc : index->key_columns()) {
      if (std::find(eq_columns.begin(), eq_columns.end(), kc) ==
          eq_columns.end()) {
        covered = false;
        break;
      }
    }
    if (!covered) continue;
    // Prefer the index with the most key columns (most selective), and
    // unique over non-unique on ties.
    if (best == nullptr ||
        index->key_columns().size() > best->key_columns().size() ||
        (index->key_columns().size() == best->key_columns().size() &&
         index->unique() && !best->unique())) {
      best = index.get();
    }
  }
  return best;
}

Table::RowSlot* Table::SlotFor(RowId rid) const {
  const size_t seg = rid >> kSegmentBits;
  const size_t off = rid & (kSegmentSize - 1);
  if (seg >= kMaxSegments) return nullptr;
  Segment* s = segments_[seg].load(std::memory_order_acquire);
  if (s == nullptr) return nullptr;
  return &s->slots[off];
}

std::pair<RowId, Table::RowSlot*> Table::AllocateSlot() {
  const RowId rid = next_rid_.fetch_add(1, std::memory_order_acq_rel);
  const size_t seg = rid >> kSegmentBits;
  const size_t off = rid & (kSegmentSize - 1);
  Segment* s = segments_[seg].load(std::memory_order_acquire);
  if (s == nullptr) {
    std::lock_guard lock(grow_mu_);
    s = segments_[seg].load(std::memory_order_acquire);
    if (s == nullptr) {
      auto fresh = std::make_unique<Segment>();
      s = fresh.release();
      segments_[seg].store(s, std::memory_order_release);
    }
  }
  return {rid, &s->slots[off]};
}

mvcc::RowVersion* Table::InstallLocked(RowSlot* slot, Tuple data, bool deleted,
                                       uint64_t writer_txn) {
  auto* v = new mvcc::RowVersion;
  v->writer_txn = writer_txn;
  v->deleted = deleted;
  v->data = std::move(data);
  v->older = slot->head;
  if (writer_txn == 0) {
    // Non-transactional install: committed immediately. Inherit the
    // head's timestamp when it is newer than kBootstrapTs so the chain
    // stays ordered newest-ts-first (replay and bulk-load contexts only).
    uint64_t ts = mvcc::kBootstrapTs;
    if (slot->head != nullptr) {
      const uint64_t head_ts =
          slot->head->commit_ts.load(std::memory_order_acquire);
      if (head_ts != mvcc::kPendingTs) ts = std::max(ts, head_ts);
    }
    v->commit_ts.store(ts, std::memory_order_release);
  }
  slot->head = v;
  if (watermark_source_ != nullptr) {
    PruneChainLocked(slot,
                     watermark_source_->load(std::memory_order_acquire));
  }
  return v;
}

uint64_t Table::PruneChainLocked(RowSlot* slot, uint64_t watermark,
                                 uint64_t* chain_len) {
  // Find the newest committed version at or below the watermark: every
  // snapshot still allowed to exist resolves to it or to something newer,
  // so everything strictly older is dead. If that boundary version is
  // itself a tombstone, it too is dead — a reader that would resolve to
  // it sees "no row", which is exactly what an empty chain says.
  mvcc::RowVersion* prev = nullptr;
  mvcc::RowVersion* v = slot->head;
  uint64_t len = 0;
  while (v != nullptr) {
    ++len;
    const uint64_t ts = v->commit_ts.load(std::memory_order_acquire);
    if (ts != mvcc::kPendingTs && ts <= watermark) break;
    prev = v;
    v = v->older;
  }
  if (chain_len != nullptr) {
    uint64_t total = len;
    for (mvcc::RowVersion* r = v == nullptr ? nullptr : v->older; r != nullptr;
         r = r->older) {
      ++total;
    }
    *chain_len = total;
  }
  uint64_t freed = 0;
  if (v == nullptr) return 0;
  if (v->deleted) {
    // Cut the boundary tombstone out as well.
    if (prev == nullptr) {
      slot->head = nullptr;
    } else {
      prev->older = nullptr;
    }
    freed = FreeChain(v);
  } else if (v->older != nullptr) {
    freed = FreeChain(v->older);
    v->older = nullptr;
  }
  return freed;
}

uint64_t Table::PruneVersions(uint64_t watermark, uint64_t* max_chain) {
  uint64_t freed = 0;
  uint64_t longest = 0;
  const uint64_t limit = NumAllocatedRows();
  for (RowId rid = 0; rid < limit; ++rid) {
    RowSlot* slot = SlotFor(rid);
    if (slot == nullptr) break;
    uint64_t len = 0;
    std::lock_guard latch(slot->latch);
    freed += PruneChainLocked(slot, watermark, &len);
    longest = std::max(longest, len);
  }
  if (max_chain != nullptr) *max_chain = longest;
  return freed;
}

Status Table::InsertIndexEntries(const Tuple& row, RowId rid,
                                 OnConflict policy, bool* conflicted,
                                 RowId* existing_rid) {
  *conflicted = false;
  // Unique indexes are reserved first (in creation order, so concurrent
  // inserters use the same order and cannot deadlock); on a later failure
  // the earlier reservations are rolled back.
  std::vector<Index*> done;
  for (const auto& index : indexes_) {
    const Tuple key = index->KeyFor(row);
    if (index->unique()) {
      RowId existing = kInvalidRowId;
      auto reserved = index->TryReserve(key, rid, &existing);
      if (!reserved.ok()) return reserved.status();
      if (!*reserved) {
        for (Index* d : done) d->Erase(d->KeyFor(row), rid);
        *conflicted = true;
        if (existing_rid != nullptr) *existing_rid = existing;
        if (policy == OnConflict::kDoNothing) return Status::OK();
        return Status::AlreadyExists("duplicate key " + key.ToString() +
                                     " in unique index '" + index->name() +
                                     "' of table '" + schema_.name() + "'");
      }
    } else {
      BF_RETURN_NOT_OK(index->Insert(key, rid));
    }
    done.push_back(index.get());
  }
  return Status::OK();
}

void Table::EraseIndexEntries(const Tuple& row, RowId rid) {
  for (const auto& index : indexes_) {
    index->Erase(index->KeyFor(row), rid);
  }
}

Result<InsertOutcome> Table::Insert(const Tuple& row, OnConflict policy,
                                    uint64_t writer_txn,
                                    mvcc::RowVersion** installed) {
  BF_RETURN_NOT_OK(schema_.ValidateTuple(row));

  // Reserve the slot first so unique-index reservations can point at it.
  auto [rid, slot] = AllocateSlot();
  bool conflicted = false;
  RowId existing = kInvalidRowId;
  Status s = InsertIndexEntries(row, rid, policy, &conflicted, &existing);
  if (!s.ok()) return s;
  if (conflicted) {
    // kDoNothing path: the allocated slot stays a tombstone forever; this
    // wastes one bitmap position, which is harmless (tombstones are
    // trivially "migrated").
    return InsertOutcome{existing, false};
  }
  {
    std::lock_guard latch(slot->latch);
    mvcc::RowVersion* v = InstallLocked(slot, row, /*deleted=*/false,
                                        writer_txn);
    if (installed != nullptr) *installed = v;
  }
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  return InsertOutcome{rid, true};
}

Status Table::Read(RowId rid, Tuple* out) const {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid " + std::to_string(rid) +
                            " out of range in '" + schema_.name() + "'");
  }
  std::lock_guard latch(slot->latch);
  if (!HeadLive(slot->head)) {
    return Status::NotFound("rid " + std::to_string(rid) + " deleted in '" +
                            schema_.name() + "'");
  }
  *out = slot->head->data;
  return Status::OK();
}

Status Table::ReadAt(RowId rid, const mvcc::ReadView& view, Tuple* out) const {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid " + std::to_string(rid) +
                            " out of range in '" + schema_.name() + "'");
  }
  std::lock_guard latch(slot->latch);
  const mvcc::RowVersion* v = mvcc::VisibleVersion(slot->head, view);
  if (v == nullptr || v->deleted) {
    return Status::NotFound("rid " + std::to_string(rid) +
                            " not visible at ts " + std::to_string(view.ts) +
                            " in '" + schema_.name() + "'");
  }
  *out = v->data;
  return Status::OK();
}

Status Table::Update(RowId rid, const Tuple& new_row, Tuple* before,
                     uint64_t writer_txn, mvcc::RowVersion** installed) {
  BF_RETURN_NOT_OK(schema_.ValidateTuple(new_row));
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid out of range in '" + schema_.name() + "'");
  }
  Tuple old_row;
  {
    std::lock_guard latch(slot->latch);
    if (!HeadLive(slot->head)) {
      return Status::NotFound("rid " + std::to_string(rid) + " deleted in '" +
                              schema_.name() + "'");
    }
    old_row = slot->head->data;
  }
  // Maintain indexes whose keys changed. Reserve new unique keys before
  // erasing old ones so a concurrent duplicate cannot slip in.
  for (const auto& index : indexes_) {
    const Tuple old_key = index->KeyFor(old_row);
    const Tuple new_key = index->KeyFor(new_row);
    if (old_key == new_key) continue;
    if (index->unique()) {
      RowId existing = kInvalidRowId;
      auto reserved = index->TryReserve(new_key, rid, &existing);
      if (!reserved.ok()) return reserved.status();
      if (!*reserved) {
        return Status::AlreadyExists("update would duplicate key " +
                                     new_key.ToString() + " in '" +
                                     index->name() + "'");
      }
    } else {
      BF_RETURN_NOT_OK(index->Insert(new_key, rid));
    }
    index->Erase(old_key, rid);
  }
  {
    std::lock_guard latch(slot->latch);
    if (before != nullptr && slot->head != nullptr) *before = slot->head->data;
    mvcc::RowVersion* v = InstallLocked(slot, new_row, /*deleted=*/false,
                                        writer_txn);
    if (installed != nullptr) *installed = v;
  }
  return Status::OK();
}

Status Table::Delete(RowId rid, Tuple* before, uint64_t writer_txn,
                     mvcc::RowVersion** installed) {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid out of range in '" + schema_.name() + "'");
  }
  Tuple old_row;
  {
    std::lock_guard latch(slot->latch);
    if (!HeadLive(slot->head)) {
      return Status::NotFound("rid " + std::to_string(rid) + " deleted in '" +
                              schema_.name() + "'");
    }
    old_row = slot->head->data;
    mvcc::RowVersion* v = InstallLocked(slot, Tuple{}, /*deleted=*/true,
                                        writer_txn);
    if (installed != nullptr) *installed = v;
  }
  EraseIndexEntries(old_row, rid);
  live_rows_.fetch_sub(1, std::memory_order_relaxed);
  if (before != nullptr) *before = old_row;
  return Status::OK();
}

Status Table::Restore(RowId rid, const Tuple& row) {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid out of range in '" + schema_.name() + "'");
  }
  {
    std::lock_guard latch(slot->latch);
    if (HeadLive(slot->head)) {
      return Status::AlreadyExists("rid " + std::to_string(rid) +
                                   " is live in '" + schema_.name() + "'");
    }
    InstallLocked(slot, row, /*deleted=*/false, /*writer_txn=*/0);
  }
  for (const auto& index : indexes_) {
    (void)index->Insert(index->KeyFor(row), rid);
  }
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Table::ForceApply(RowId rid, const Tuple& row) {
  ReserveRows(rid + 1);
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr) {
    return Status::NotFound("rid out of range in '" + schema_.name() + "'");
  }
  bool live;
  {
    std::lock_guard latch(slot->latch);
    live = HeadLive(slot->head);
  }
  return live ? Update(rid, row, nullptr) : Restore(rid, row);
}

Status Table::UndoInstall(RowId rid, mvcc::RowVersion* v) {
  RowSlot* slot = SlotFor(rid);
  if (slot == nullptr || v == nullptr) {
    return Status::Internal("undo of unknown version in '" + schema_.name() +
                            "'");
  }
  {
    std::lock_guard latch(slot->latch);
    if (slot->head != v) {
      // Strict 2PL means nobody stacks a version on an uncommitted one;
      // hitting this indicates a lock-discipline bug upstream.
      return Status::Internal("undo of non-head version in '" +
                              schema_.name() + "'");
    }
    slot->head = v->older;
  }
  if (v->deleted) {
    // Undo of a delete: the shadowed version becomes live again.
    if (v->older != nullptr) {
      for (const auto& index : indexes_) {
        (void)index->Insert(index->KeyFor(v->older->data), rid);
      }
    }
    live_rows_.fetch_add(1, std::memory_order_relaxed);
  } else if (v->older == nullptr || v->older->deleted) {
    // Undo of an insert (fresh slot or insert-over-tombstone).
    EraseIndexEntries(v->data, rid);
    live_rows_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    // Undo of an update: swap index keys back where they changed.
    // Reservations are best-effort, matching the historical rollback
    // path: the row was exclusively locked, so a lost reservation means
    // a concurrent insert took the key in the meantime.
    const Tuple& undone = v->data;
    const Tuple& restored = v->older->data;
    for (const auto& index : indexes_) {
      const Tuple undone_key = index->KeyFor(undone);
      const Tuple restored_key = index->KeyFor(restored);
      if (undone_key == restored_key) continue;
      index->Erase(undone_key, rid);
      (void)index->Insert(restored_key, rid);
    }
  }
  delete v;
  return Status::OK();
}

void Table::ReserveRows(uint64_t n) {
  if (n == 0) return;
  const size_t last_seg = (n - 1) >> kSegmentBits;
  std::lock_guard lock(grow_mu_);
  for (size_t seg = 0; seg <= last_seg && seg < kMaxSegments; ++seg) {
    if (segments_[seg].load(std::memory_order_acquire) == nullptr) {
      auto fresh = std::make_unique<Segment>();
      segments_[seg].store(fresh.release(), std::memory_order_release);
    }
  }
  uint64_t cur = next_rid_.load(std::memory_order_acquire);
  while (cur < n &&
         !next_rid_.compare_exchange_weak(cur, n, std::memory_order_acq_rel)) {
  }
}

Status Table::RestoreAt(RowId rid, const Tuple& row) {
  ReserveRows(rid + 1);
  return Restore(rid, row);
}

void Table::Scan(const std::function<bool(RowId, const Tuple&)>& fn) const {
  ScanRange(0, NumAllocatedRows(), fn);
}

void Table::ScanRange(
    RowId begin, RowId end,
    const std::function<bool(RowId, const Tuple&)>& fn) const {
  const RowId limit = std::min<RowId>(end, NumAllocatedRows());
  for (RowId rid = begin; rid < limit; ++rid) {
    RowSlot* slot = SlotFor(rid);
    if (slot == nullptr) return;
    Tuple copy;
    bool live;
    {
      std::lock_guard latch(slot->latch);
      live = HeadLive(slot->head);
      if (live) copy = slot->head->data;
    }
    if (live && !fn(rid, copy)) return;
  }
}

void Table::ReadMany(
    const std::vector<RowId>& rids,
    const std::function<bool(RowId, const Tuple&)>& fn) const {
  for (RowId rid : rids) {
    Tuple row;
    if (Read(rid, &row).ok()) {
      if (!fn(rid, row)) return;
    }
  }
}

void Table::ScanAt(const mvcc::ReadView& view,
                   const std::function<bool(RowId, const Tuple&)>& fn) const {
  ScanRangeAt(view, 0, NumAllocatedRows(), fn);
}

void Table::ScanRangeAt(
    const mvcc::ReadView& view, RowId begin, RowId end,
    const std::function<bool(RowId, const Tuple&)>& fn) const {
  const RowId limit = std::min<RowId>(end, NumAllocatedRows());
  for (RowId rid = begin; rid < limit; ++rid) {
    RowSlot* slot = SlotFor(rid);
    if (slot == nullptr) return;
    Tuple copy;
    bool visible;
    {
      std::lock_guard latch(slot->latch);
      const mvcc::RowVersion* v = mvcc::VisibleVersion(slot->head, view);
      visible = v != nullptr && !v->deleted;
      if (visible) copy = v->data;
    }
    if (visible && !fn(rid, copy)) return;
  }
}

void Table::ReadManyAt(
    const mvcc::ReadView& view, const std::vector<RowId>& rids,
    const std::function<bool(RowId, const Tuple&)>& fn) const {
  for (RowId rid : rids) {
    Tuple row;
    if (ReadAt(rid, view, &row).ok()) {
      if (!fn(rid, row)) return;
    }
  }
}

}  // namespace bullfrog
