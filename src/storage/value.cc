#include "storage/value.h"

#include <cmath>
#include <cstdio>

namespace bullfrog {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

int CompareInts(int64_t a, int64_t b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

// Rank used to order values of different types; numerics share a rank so
// int/double comparisons are numeric.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kTimestamp:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const ValueType ta = type();
  const ValueType tb = other.type();
  const int ra = TypeRank(ta);
  const int rb = TypeRank(tb);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
      if (tb == ValueType::kInt64) return CompareInts(AsInt(), other.AsInt());
      return CompareDoubles(AsDouble(), other.AsDouble());
    case ValueType::kDouble:
      return CompareDoubles(AsDouble(), other.AsDouble());
    case ValueType::kTimestamp:
      return CompareInts(AsTimestamp(), other.AsTimestamp());
    case ValueType::kString:
      return AsString().compare(other.AsString());
  }
  return 0;
}

uint64_t Value::Hash() const {
  // FNV-1a over a type tag plus the canonical byte representation.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto mix = [](uint64_t h, const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    return h;
  };
  uint64_t h = kOffset;
  const uint8_t tag = static_cast<uint8_t>(TypeRank(type()));
  h = mix(h, &tag, 1);
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64: {
      // Hash ints via their double-equal canonical form when integral, so
      // Int(3) and Timestamp(3) differ (different tag) but Int stays stable.
      const int64_t v = AsInt();
      h = mix(h, &v, sizeof(v));
      break;
    }
    case ValueType::kDouble: {
      const double d = AsDouble();
      h = mix(h, &d, sizeof(d));
      break;
    }
    case ValueType::kTimestamp: {
      const int64_t v = AsTimestamp();
      h = mix(h, &v, sizeof(v));
      break;
    }
    case ValueType::kString: {
      const std::string& s = AsString();
      h = mix(h, s.data(), s.size());
      break;
    }
  }
  return h;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kTimestamp:
      return "ts:" + std::to_string(AsTimestamp());
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace bullfrog
