# Renders a throughput figure from a bench output file.
# Usage:
#   ./build/bench/fig03_table_split_throughput > fig03.txt
#   gnuplot -e "infile='fig03.txt'; series='saturated/eager saturated/bullfrog-bitmap'" \
#           scripts/plot_throughput.gnuplot > fig03.png
# Bench output rows are "<series> <seconds> <tx/s>"; '#' lines are comments.
set terminal pngcairo size 1000,420
set xlabel "seconds"
set ylabel "txns/sec"
set key outside right
set grid ytics
plot for [s in series] \
  sprintf("< grep '^%s ' %s", s, infile) using 2:3 with lines lw 2 title s
