#!/usr/bin/env bash
# End-to-end smoke test for the migration train: a durable primary runs
# a chained train of 3 lazy migrations (t0 -> t1 -> t2 -> t3, each hop
# submitted before its predecessor drains) over live client traffic,
# and the script requires
#   1. the first hop switches immediately, the two overlapping hops come
#      back as "migration queued (... position N ...)" — not busy,
#   2. ADMIN report mid-train shows the train (entries/active/queued)
#      and the metrics scrape carries the bullfrog_migrations_active /
#      bullfrog_migrations_queued gauges,
#   3. a replica started mid-train bootstraps: with BF_SNAPSHOT_READS=1
#      the quiesce-free checkpoint embeds the in-flight train and the
#      replica restores it converging; otherwise the primary defers the
#      capture (kBusy) and the replica's bounded-backoff retry loop rides
#      it out, publishing phase="bootstrapping ..." in ADMIN replication
#      instead of failing hard,
#   4. the whole chain converges: t3 holds every row on primary and
#      replica, the dumps match byte for byte,
#   5. with BF_SNAPSHOT_READS=1, an explicit mid-train ADMIN checkpoint
#      succeeds and a kill -9 + restart recovers from it, resumes the
#      train from the WAL, and still converges,
#   6. every daemon exits 0 on SIGTERM (the sanitizer legs turn leaks
#      and races into non-zero exits).
# Run from the repo root with the build directory as $1 (default: build).
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/src/server/bullfrog_serverd"
SHELL_BIN="$BUILD_DIR/examples/bullfrog_shell"
PLOG="$(mktemp /tmp/bullfrog_train_primary.XXXXXX.log)"
RLOG="$(mktemp /tmp/bullfrog_train_replica.XXXXXX.log)"
DATA_DIR="$(mktemp -d /tmp/bullfrog_train_data.XXXXXX)"
SNAPSHOT="${BF_SNAPSHOT_READS:-0}"

[[ -x $SERVERD ]] || { echo "missing $SERVERD (build first)"; exit 1; }
[[ -x $SHELL_BIN ]] || { echo "missing $SHELL_BIN (build first)"; exit 1; }

PRIMARY_PID=""
REPLICA_PID=""
TRAFFIC_PID=""
cleanup() {
  [[ -n $TRAFFIC_PID ]] && kill -9 "$TRAFFIC_PID" 2>/dev/null || true
  [[ -n $REPLICA_PID ]] && kill -9 "$REPLICA_PID" 2>/dev/null || true
  [[ -n $PRIMARY_PID ]] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
  echo "--- primary log ---"; cat "$PLOG"
  echo "--- replica log ---"; cat "$RLOG"
}
trap cleanup EXIT

wait_addr() { # logfile pid
  local addr=""
  for _ in $(seq 1 150); do
    addr=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$1")
    [[ -n $addr ]] && { echo "$addr"; return 0; }
    kill -0 "$2" 2>/dev/null || { echo "serverd died on startup" >&2; return 1; }
    sleep 0.1
  done
  echo "serverd never reported its port" >&2
  return 1
}

shell_run() { # addr
  "$SHELL_BIN" --connect "$1" 2>&1 |
    sed -e '1d' -e 's/^bullfrog> //' -e 's/^migrate> //'
}

"$SERVERD" --port=0 --workers=8 --data-dir="$DATA_DIR" >"$PLOG" 2>&1 &
PRIMARY_PID=$!
PADDR=$(wait_addr "$PLOG" "$PRIMARY_PID")
echo "primary up at $PADDR (pid $PRIMARY_PID, data $DATA_DIR)"

ROWS=64
{
  echo "CREATE TABLE t0 (id INT PRIMARY KEY, v INT);"
  echo "CREATE TABLE traffic (id INT PRIMARY KEY, note TEXT);"
  for i in $(seq 0 $((ROWS - 1))); do
    echo "INSERT INTO t0 VALUES ($i, $((i * 10)));"
  done
} | shell_run "$PADDR" >/dev/null

# Live traffic for the whole run: writes to a side table plus reads that
# chase the head of the chain (lazy read-through on whichever hop is in
# flight). Read errors are expected while a hop's output table does not
# exist yet; write failures are not.
(
  i=0
  while true; do
    i=$((i + 1))
    OUT=$(echo "INSERT INTO traffic VALUES ($i, 'tick');" | shell_run "$PADDR") ||
      exit 0  # Primary gone (shutdown/kill legs) — stop quietly.
    grep -q "error" <<<"$OUT" && { echo "traffic write failed: $OUT" >&2; exit 1; }
    for t in t1 t2 t3; do
      echo "SELECT v FROM $t WHERE id = $((i % ROWS));" | shell_run "$PADDR" >/dev/null || exit 0
    done
    sleep 0.05
  done
) &
TRAFFIC_PID=$!

# The train: hop 1 switches now, hops 2 and 3 must queue (their input
# tables do not even exist yet — compilation is deferred to auto-start).
submit_hop() { # src dst
  shell_run "$PADDR" <<EOF
.migrate
CREATE TABLE $2 PRIMARY KEY (id) AS SELECT id, v FROM $1;
DROP TABLE $1;
.go
EOF
}
H1=$(submit_hop t0 t1)
grep -q "migration live" <<<"$H1" || { echo "hop 1 did not switch: $H1"; exit 1; }
H2=$(submit_hop t1 t2)
grep -q "migration queued" <<<"$H2" || { echo "hop 2 did not queue: $H2"; exit 1; }
grep -q "position 1" <<<"$H2" || { echo "hop 2 missing queue position: $H2"; exit 1; }
H3=$(submit_hop t2 t3)
grep -q "migration queued" <<<"$H3" || { echo "hop 3 did not queue: $H3"; exit 1; }
echo "train submitted: 1 live + 2 queued"

# Mid-train observability: the ADMIN report lists the train, the metrics
# scrape exposes the occupancy gauges.
REPORT=$(echo ".report" | shell_run "$PADDR")
grep -q "migration train" <<<"$REPORT" ||
  { echo "admin report missing train section: $REPORT"; exit 1; }
grep -Eq "queued=[12]" <<<"$REPORT" ||
  { echo "admin report missing queued entries: $REPORT"; exit 1; }
METRICS=$(echo ".metrics" | shell_run "$PADDR")
grep -qE '^bullfrog_migrations_active [0-9]' <<<"$METRICS" ||
  { echo "metrics missing bullfrog_migrations_active"; exit 1; }
grep -qE '^bullfrog_migrations_queued [0-9]' <<<"$METRICS" ||
  { echo "metrics missing bullfrog_migrations_queued"; exit 1; }
echo "mid-train report + gauges OK"

# Mid-train checkpoint: quiesce-free (snapshot reads) embeds the train;
# the legacy quiesced path must defer with the busy error instead.
CKPT=$(echo ".admin checkpoint" | shell_run "$PADDR")
if [[ $SNAPSHOT == "1" ]]; then
  grep -q "checkpoint ok" <<<"$CKPT" ||
    { echo "mid-train quiesce-free checkpoint failed: $CKPT"; exit 1; }
  echo "mid-train checkpoint OK (train embedded)"
else
  grep -qi "busy\|deferred" <<<"$CKPT" ||
    { echo "quiesced mid-train checkpoint should defer, got: $CKPT"; exit 1; }
  echo "mid-train checkpoint deferred as expected (quiesced mode)"
fi

# Replica bootstrap mid-train. Snapshot mode: the checkpoint ships the
# in-flight train and the replica converges while it drains. Quiesced
# mode: the primary answers kBusy and the replica's bounded-backoff loop
# waits it out — its ADMIN replication line must show the wait.
BF_SNAPSHOT_READS="$SNAPSHOT" "$SERVERD" --port=0 --workers=4 \
  --replica-of="$PADDR" >"$RLOG" 2>&1 &
REPLICA_PID=$!
RADDR=$(wait_addr "$RLOG" "$REPLICA_PID")
echo "replica up at $RADDR (pid $REPLICA_PID)"
if [[ $SNAPSHOT != "1" ]]; then
  PHASE=""
  for _ in $(seq 1 100); do
    PHASE=$(echo ".admin replication" | shell_run "$RADDR") || PHASE=""
    grep -q 'phase="bootstrapping' <<<"$PHASE" && break
    grep -q "role=replica" <<<"$PHASE" && ! grep -q "phase=" <<<"$PHASE" && break
    sleep 0.1
  done
  # Either we caught the bootstrapping phase in flight, or the train
  # finished so fast the replica was already streaming — both fine, but
  # the replica must never have died.
  kill -0 "$REPLICA_PID" 2>/dev/null ||
    { echo "replica died during busy-primary bootstrap"; exit 1; }
  echo "replica bootstrap wait observed: ${PHASE:-streaming}"
fi

# Convergence: the chain drains hop by hop until t3 holds every row.
DONE=""
for _ in $(seq 1 600); do
  if echo ".progress" | shell_run "$PADDR" | grep -q "(complete)"; then
    DONE=1; break
  fi
  sleep 0.1
done
[[ -n $DONE ]] || { echo "train never converged on primary"; exit 1; }
N=$(echo "SELECT COUNT(*) AS n FROM t3;" | shell_run "$PADDR")
grep -q "^$ROWS$" <<<"$N" || { echo "t3 row count wrong: $N"; exit 1; }
echo "train converged: t3 has $ROWS rows"

# Stop traffic before comparing dumps (the side table keeps growing).
kill "$TRAFFIC_PID" 2>/dev/null || true
wait "$TRAFFIC_PID" 2>/dev/null || true
TRAFFIC_PID=""

# Replica catches up and matches byte for byte. behind=0 alone is not
# enough — right after a (busy-delayed) bootstrap the replica has not
# tailed yet and trivially reports 0 — so poll the dumps directly.
echo ".admin dump" | shell_run "$PADDR" >/tmp/bullfrog_train_pdump.txt
CAUGHT=""
for _ in $(seq 1 600); do
  echo ".admin dump" | shell_run "$RADDR" >/tmp/bullfrog_train_rdump.txt
  if cmp -s /tmp/bullfrog_train_pdump.txt /tmp/bullfrog_train_rdump.txt; then
    CAUGHT=1; break
  fi
  sleep 0.1
done
if [[ -z $CAUGHT ]]; then
  diff -u /tmp/bullfrog_train_pdump.txt /tmp/bullfrog_train_rdump.txt || true
  echo "primary/replica dumps diverged"
  exit 1
fi
grep -q "t3" /tmp/bullfrog_train_pdump.txt ||
  { echo "dump missing migrated table t3"; exit 1; }
echo "replica converged with the train"

kill -TERM "$REPLICA_PID"
STATUS=0; wait "$REPLICA_PID" || STATUS=$?
REPLICA_PID=""
[[ $STATUS -eq 0 ]] || { echo "replica exited non-zero ($STATUS)"; exit "$STATUS"; }
kill -TERM "$PRIMARY_PID"
STATUS=0; wait "$PRIMARY_PID" || STATUS=$?
PRIMARY_PID=""
[[ $STATUS -eq 0 ]] || { echo "primary exited non-zero ($STATUS)"; exit "$STATUS"; }
trap - EXIT
echo "clean shutdowns OK"

# ---- Snapshot-only leg: mid-train checkpoint + kill -9 recovery ----
if [[ $SNAPSHOT == "1" ]]; then
  PLOG2="$(mktemp /tmp/bullfrog_train_crash.XXXXXX.log)"
  DATA2="$(mktemp -d /tmp/bullfrog_train_data2.XXXXXX)"
  CRASH_PID=""
  cleanup2() {
    [[ -n $CRASH_PID ]] && kill -9 "$CRASH_PID" 2>/dev/null || true
    echo "--- crash-leg log ---"; cat "$PLOG2"
  }
  trap cleanup2 EXIT

  "$SERVERD" --port=0 --workers=8 --data-dir="$DATA2" >"$PLOG2" 2>&1 &
  CRASH_PID=$!
  CADDR=$(wait_addr "$PLOG2" "$CRASH_PID")
  {
    echo "CREATE TABLE t0 (id INT PRIMARY KEY, v INT);"
    for i in $(seq 0 $((ROWS - 1))); do
      echo "INSERT INTO t0 VALUES ($i, $((i * 10)));"
    done
  } | "$SHELL_BIN" --connect "$CADDR" >/dev/null 2>&1
  submit_crash_hop() { # src dst
    "$SHELL_BIN" --connect "$CADDR" 2>&1 <<EOF
.migrate
CREATE TABLE $2 PRIMARY KEY (id) AS SELECT id, v FROM $1;
DROP TABLE $1;
.go
EOF
  }
  submit_crash_hop t0 t1 | grep -q "migration live" || { echo "crash leg hop 1 failed"; exit 1; }
  submit_crash_hop t1 t2 | grep -q "migration queued" || { echo "crash leg hop 2 failed"; exit 1; }
  submit_crash_hop t2 t3 | grep -q "migration queued" || { echo "crash leg hop 3 failed"; exit 1; }
  CKPT=$(echo ".admin checkpoint" | "$SHELL_BIN" --connect "$CADDR" 2>&1)
  grep -q "checkpoint ok" <<<"$CKPT" ||
    { echo "crash-leg mid-train checkpoint failed: $CKPT"; exit 1; }
  kill -9 "$CRASH_PID"
  wait "$CRASH_PID" 2>/dev/null || true
  CRASH_PID=""
  echo "killed primary mid-train after checkpoint; restarting"

  "$SERVERD" --port=0 --workers=8 --data-dir="$DATA2" >"$PLOG2" 2>&1 &
  CRASH_PID=$!
  CADDR=$(wait_addr "$PLOG2" "$CRASH_PID")
  DONE=""
  for _ in $(seq 1 600); do
    if echo ".progress" | "$SHELL_BIN" --connect "$CADDR" 2>/dev/null |
        grep -q "(complete)"; then
      DONE=1; break
    fi
    sleep 0.1
  done
  [[ -n $DONE ]] || { echo "recovered train never converged"; exit 1; }
  N=$(echo "SELECT COUNT(*) AS n FROM t3;" | "$SHELL_BIN" --connect "$CADDR" 2>&1 |
      sed -e '1d' -e 's/^bullfrog> //')
  grep -q "^$ROWS$" <<<"$N" || { echo "recovered t3 count wrong: $N"; exit 1; }
  echo "checkpoint restore resumed the train and converged"

  kill -TERM "$CRASH_PID"
  STATUS=0; wait "$CRASH_PID" || STATUS=$?
  CRASH_PID=""
  [[ $STATUS -eq 0 ]] || { echo "crash-leg daemon exited non-zero"; exit "$STATUS"; }
  trap - EXIT
  rm -rf "$DATA2"
fi

rm -rf "$DATA_DIR"
echo "migration train smoke OK"
