#!/usr/bin/env bash
# End-to-end smoke test for the replication subsystem: starts a primary
# bullfrog_serverd on an ephemeral loopback port, bootstraps a replica
# daemon from it (--replica-of), loads data and drives a lazy migration
# on the primary while the replica tails the log, then requires
#   1. the replica rejects writes with the read-only error,
#   2. the replica's ADMIN dump converges to the primary's (byte equal),
#   3. both daemons exit 0 on SIGTERM.
# Run from the repo root with the build directory as $1 (default:
# build). Intended for the sanitizer CI legs: any leak or race aborts a
# daemon with a non-zero exit and fails the script.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/src/server/bullfrog_serverd"
SHELL_BIN="$BUILD_DIR/examples/bullfrog_shell"
PLOG="$(mktemp /tmp/bullfrog_primary.XXXXXX.log)"
RLOG="$(mktemp /tmp/bullfrog_replica.XXXXXX.log)"

[[ -x $SERVERD ]] || { echo "missing $SERVERD (build first)"; exit 1; }
[[ -x $SHELL_BIN ]] || { echo "missing $SHELL_BIN (build first)"; exit 1; }

PRIMARY_PID=""
REPLICA_PID=""
cleanup() {
  [[ -n $REPLICA_PID ]] && kill -9 "$REPLICA_PID" 2>/dev/null || true
  [[ -n $PRIMARY_PID ]] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
  echo "--- primary log ---"; cat "$PLOG"
  echo "--- replica log ---"; cat "$RLOG"
}
trap cleanup EXIT

# Parse "bullfrog_serverd listening on HOST:PORT" (printed once ready).
wait_addr() { # logfile pid
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$1")
    [[ -n $addr ]] && { echo "$addr"; return 0; }
    kill -0 "$2" 2>/dev/null || { echo "serverd died on startup" >&2; return 1; }
    sleep 0.1
  done
  echo "serverd never reported its port" >&2
  return 1
}

# One-shot shell session: feeds stdin commands, strips the prompt noise
# (banner line and "bullfrog> "/"migrate> " prefixes) so callers can
# grep/diff the payload.
shell_run() { # addr
  "$SHELL_BIN" --connect "$1" 2>&1 |
    sed -e '1d' -e 's/^bullfrog> //' -e 's/^migrate> //'
}

"$SERVERD" --port=0 --workers=8 >"$PLOG" 2>&1 &
PRIMARY_PID=$!
PADDR=$(wait_addr "$PLOG" "$PRIMARY_PID")
echo "primary up at $PADDR (pid $PRIMARY_PID)"

# Seed schema + rows before the replica bootstraps (checkpoint path),
# and leave more to arrive afterwards (tail path).
shell_run "$PADDR" <<'EOF'
CREATE TABLE accounts (id INT PRIMARY KEY, balance INT);
INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300), (4, 400);
EOF

"$SERVERD" --port=0 --workers=8 --replica-of="$PADDR" >"$RLOG" 2>&1 &
REPLICA_PID=$!
RADDR=$(wait_addr "$RLOG" "$REPLICA_PID")
echo "replica up at $RADDR (pid $REPLICA_PID)"

# Post-bootstrap writes ship over the tail stream.
shell_run "$PADDR" <<'EOF'
INSERT INTO accounts VALUES (5, 500), (6, 600);
UPDATE accounts SET balance = 150 WHERE id = 1;
DELETE FROM accounts WHERE id = 4;
EOF

# Writes against the replica must be rejected with the read-only error.
REJECT=$(echo "INSERT INTO accounts VALUES (99, 9);" | shell_run "$RADDR")
if ! grep -q "read-only replica" <<<"$REJECT"; then
  echo "replica accepted a write (or wrong error): $REJECT"
  exit 1
fi
echo "replica write rejection OK"

# Live lazy migration on the primary while the replica tails it.
shell_run "$PADDR" <<'EOF'
.migrate
CREATE TABLE accounts_v2 PRIMARY KEY (id) AS
  SELECT id, balance, balance * 2 AS doubled FROM accounts;
DROP TABLE accounts;
.go
EOF

# Reads through the replica during the migration must already see the
# new schema (forwarded reads migrate the touched rows on the primary).
# Retry while the MIGRATE record is still in flight on the tail stream.
MID=""
for _ in $(seq 1 100); do
  MID=$(echo "SELECT doubled FROM accounts_v2 WHERE id = 1;" | shell_run "$RADDR")
  grep -q "300" <<<"$MID" && break
  MID=""
  sleep 0.1
done
if [[ -z $MID ]]; then
  echo "replica mid-migration read never saw the new schema"
  exit 1
fi
echo "replica mid-migration read OK"

# Wait out the primary's background migrator.
DONE=""
for _ in $(seq 1 300); do
  if echo ".progress" | shell_run "$PADDR" | grep -q "(complete)"; then
    DONE=1; break
  fi
  sleep 0.1
done
[[ -n $DONE ]] || { echo "migration never completed on primary"; exit 1; }

# Wait for the replica to drain the tail (behind=0 at the final offset).
CAUGHT=""
for _ in $(seq 1 300); do
  if echo ".admin replication" | shell_run "$RADDR" | grep -q "behind=0"; then
    CAUGHT=1; break
  fi
  sleep 0.1
done
[[ -n $CAUGHT ]] || { echo "replica never caught up"; exit 1; }
echo ".admin replication" | shell_run "$RADDR"

# Byte-identical logical state on both sides.
echo ".admin dump" | shell_run "$PADDR" >/tmp/bullfrog_primary_dump.txt
echo ".admin dump" | shell_run "$RADDR" >/tmp/bullfrog_replica_dump.txt
if ! diff -u /tmp/bullfrog_primary_dump.txt /tmp/bullfrog_replica_dump.txt; then
  echo "primary/replica dumps diverged"
  exit 1
fi
grep -q "accounts_v2" /tmp/bullfrog_primary_dump.txt ||
  { echo "dump missing migrated table"; exit 1; }
echo "primary/replica dumps converged"

# Graceful shutdown must drain and exit 0 (sanitizers report on exit).
kill -TERM "$REPLICA_PID"
STATUS=0
wait "$REPLICA_PID" || STATUS=$?
REPLICA_PID=""
if [[ $STATUS -ne 0 ]]; then
  echo "replica exited non-zero ($STATUS)"
  exit "$STATUS"
fi
kill -TERM "$PRIMARY_PID"
STATUS=0
wait "$PRIMARY_PID" || STATUS=$?
PRIMARY_PID=""
if [[ $STATUS -ne 0 ]]; then
  echo "primary exited non-zero ($STATUS)"
  exit "$STATUS"
fi
trap - EXIT
echo "replication smoke OK"
