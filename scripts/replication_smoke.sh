#!/usr/bin/env bash
# End-to-end smoke test for the replication subsystem: starts a primary
# bullfrog_serverd on an ephemeral loopback port, bootstraps a replica
# daemon from it (--replica-of), loads data and drives a lazy migration
# on the primary while the replica tails the log, then requires
#   1. the replica rejects writes with the read-only error,
#   2. the replica's ADMIN dump converges to the primary's (byte equal),
#   3. both daemons' ADMIN metrics scrapes expose replication health
#      (apply lag gauge, read-through counter, migration unit counters),
#   4. both daemons exit 0 on SIGTERM.
# A second leg then checks checkpoint-corruption recovery on a durable
# (--data-dir) daemon: write, checkpoint, write more, stop, plant a
# garbage "newest" checkpoint, restart — all rows must survive and the
# daemon must log that it skipped the corrupt checkpoint.
# A third leg runs a durable primary with BF_WAL_FSYNC=1, streams
# single-row INSERTs through the group-commit WAL, kill -9s the primary
# mid-load, restarts it, verifies no acked insert was lost, then
# bootstraps a replica off the recovered primary and requires the dumps
# to converge (the LSN-keyed tail stream resumes cleanly post-crash).
# Run from the repo root with the build directory as $1 (default:
# build). Intended for the sanitizer CI legs: any leak or race aborts a
# daemon with a non-zero exit and fails the script.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/src/server/bullfrog_serverd"
SHELL_BIN="$BUILD_DIR/examples/bullfrog_shell"
PLOG="$(mktemp /tmp/bullfrog_primary.XXXXXX.log)"
RLOG="$(mktemp /tmp/bullfrog_replica.XXXXXX.log)"

[[ -x $SERVERD ]] || { echo "missing $SERVERD (build first)"; exit 1; }
[[ -x $SHELL_BIN ]] || { echo "missing $SHELL_BIN (build first)"; exit 1; }

PRIMARY_PID=""
REPLICA_PID=""
cleanup() {
  [[ -n $REPLICA_PID ]] && kill -9 "$REPLICA_PID" 2>/dev/null || true
  [[ -n $PRIMARY_PID ]] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
  echo "--- primary log ---"; cat "$PLOG"
  echo "--- replica log ---"; cat "$RLOG"
}
trap cleanup EXIT

# Parse "bullfrog_serverd listening on HOST:PORT" (printed once ready).
wait_addr() { # logfile pid
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$1")
    [[ -n $addr ]] && { echo "$addr"; return 0; }
    kill -0 "$2" 2>/dev/null || { echo "serverd died on startup" >&2; return 1; }
    sleep 0.1
  done
  echo "serverd never reported its port" >&2
  return 1
}

# One-shot shell session: feeds stdin commands, strips the prompt noise
# (banner line and "bullfrog> "/"migrate> " prefixes) so callers can
# grep/diff the payload.
shell_run() { # addr
  "$SHELL_BIN" --connect "$1" 2>&1 |
    sed -e '1d' -e 's/^bullfrog> //' -e 's/^migrate> //'
}

"$SERVERD" --port=0 --workers=8 >"$PLOG" 2>&1 &
PRIMARY_PID=$!
PADDR=$(wait_addr "$PLOG" "$PRIMARY_PID")
echo "primary up at $PADDR (pid $PRIMARY_PID)"

# Seed schema + rows before the replica bootstraps (checkpoint path),
# and leave more to arrive afterwards (tail path).
shell_run "$PADDR" <<'EOF'
CREATE TABLE accounts (id INT PRIMARY KEY, balance INT);
INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300), (4, 400);
EOF

"$SERVERD" --port=0 --workers=8 --replica-of="$PADDR" >"$RLOG" 2>&1 &
REPLICA_PID=$!
RADDR=$(wait_addr "$RLOG" "$REPLICA_PID")
echo "replica up at $RADDR (pid $REPLICA_PID)"

# Post-bootstrap writes ship over the tail stream.
shell_run "$PADDR" <<'EOF'
INSERT INTO accounts VALUES (5, 500), (6, 600);
UPDATE accounts SET balance = 150 WHERE id = 1;
DELETE FROM accounts WHERE id = 4;
EOF

# Writes against the replica must be rejected with the read-only error.
REJECT=$(echo "INSERT INTO accounts VALUES (99, 9);" | shell_run "$RADDR")
if ! grep -q "read-only replica" <<<"$REJECT"; then
  echo "replica accepted a write (or wrong error): $REJECT"
  exit 1
fi
echo "replica write rejection OK"

# Live lazy migration on the primary while the replica tails it.
shell_run "$PADDR" <<'EOF'
.migrate
CREATE TABLE accounts_v2 PRIMARY KEY (id) AS
  SELECT id, balance, balance * 2 AS doubled FROM accounts;
DROP TABLE accounts;
.go
EOF

# Reads through the replica during the migration must already see the
# new schema (forwarded reads migrate the touched rows on the primary).
# Retry while the MIGRATE record is still in flight on the tail stream.
MID=""
for _ in $(seq 1 100); do
  MID=$(echo "SELECT doubled FROM accounts_v2 WHERE id = 1;" | shell_run "$RADDR")
  grep -q "300" <<<"$MID" && break
  MID=""
  sleep 0.1
done
if [[ -z $MID ]]; then
  echo "replica mid-migration read never saw the new schema"
  exit 1
fi
echo "replica mid-migration read OK"

# Wait out the primary's background migrator.
DONE=""
for _ in $(seq 1 300); do
  if echo ".progress" | shell_run "$PADDR" | grep -q "(complete)"; then
    DONE=1; break
  fi
  sleep 0.1
done
[[ -n $DONE ]] || { echo "migration never completed on primary"; exit 1; }

# Wait for the replica to drain the tail (behind=0 at the final offset).
CAUGHT=""
for _ in $(seq 1 300); do
  if echo ".admin replication" | shell_run "$RADDR" | grep -q "behind=0"; then
    CAUGHT=1; break
  fi
  sleep 0.1
done
[[ -n $CAUGHT ]] || { echo "replica never caught up"; exit 1; }
echo ".admin replication" | shell_run "$RADDR"

# Byte-identical logical state on both sides.
echo ".admin dump" | shell_run "$PADDR" >/tmp/bullfrog_primary_dump.txt
echo ".admin dump" | shell_run "$RADDR" >/tmp/bullfrog_replica_dump.txt
if ! diff -u /tmp/bullfrog_primary_dump.txt /tmp/bullfrog_replica_dump.txt; then
  echo "primary/replica dumps diverged"
  exit 1
fi
grep -q "accounts_v2" /tmp/bullfrog_primary_dump.txt ||
  { echo "dump missing migrated table"; exit 1; }
echo "primary/replica dumps converged"

# ADMIN metrics: the primary scrape carries migration unit counters, the
# replica scrape carries its apply-lag gauge (0 once caught up) and the
# read-through counter bumped by the mid-migration forwarded read above.
PMETRICS=$(echo ".metrics" | shell_run "$PADDR")
grep -qF 'bullfrog_migration_units_migrated{mode="lazy"}' <<<"$PMETRICS" ||
  { echo "primary metrics missing migration unit counters"; echo "$PMETRICS"; exit 1; }
RMETRICS=$(echo ".metrics" | shell_run "$RADDR")
grep -qE '^bullfrog_replica_apply_lag_records 0$' <<<"$RMETRICS" ||
  { echo "replica metrics missing apply-lag gauge at 0"; echo "$RMETRICS"; exit 1; }
grep -qE '^bullfrog_replica_read_through_total ' <<<"$RMETRICS" ||
  { echo "replica metrics missing read-through counter"; echo "$RMETRICS"; exit 1; }
# The forwarded mid-migration read should have bumped it; on a heavily
# loaded (sanitizer) run the migration can complete before the replica's
# first read, so a zero is reported but not fatal.
grep -qE '^bullfrog_replica_read_through_total [1-9]' <<<"$RMETRICS" ||
  echo "note: no read-through round-trips (migration finished early)"
echo "metrics scrapes OK"

# Graceful shutdown must drain and exit 0 (sanitizers report on exit).
kill -TERM "$REPLICA_PID"
STATUS=0
wait "$REPLICA_PID" || STATUS=$?
REPLICA_PID=""
if [[ $STATUS -ne 0 ]]; then
  echo "replica exited non-zero ($STATUS)"
  exit "$STATUS"
fi
kill -TERM "$PRIMARY_PID"
STATUS=0
wait "$PRIMARY_PID" || STATUS=$?
PRIMARY_PID=""
if [[ $STATUS -ne 0 ]]; then
  echo "primary exited non-zero ($STATUS)"
  exit "$STATUS"
fi
trap - EXIT

# ---- Checkpoint-corruption recovery leg (durable daemon) ----
DATA_DIR=$(mktemp -d /tmp/bullfrog_data.XXXXXX)
DLOG=$(mktemp /tmp/bullfrog_durable.XXXXXX.log)
DURABLE_PID=""
cleanup_durable() {
  [[ -n $DURABLE_PID ]] && kill -9 "$DURABLE_PID" 2>/dev/null || true
  echo "--- durable log ---"; cat "$DLOG"
}
trap cleanup_durable EXIT

"$SERVERD" --port=0 --workers=4 --data-dir="$DATA_DIR" >"$DLOG" 2>&1 &
DURABLE_PID=$!
DADDR=$(wait_addr "$DLOG" "$DURABLE_PID")
echo "durable primary up at $DADDR (data dir $DATA_DIR)"

# Rows on both sides of a checkpoint, so recovery needs checkpoint + WAL.
shell_run "$DADDR" <<'EOF'
CREATE TABLE ledger (id INT PRIMARY KEY, v INT);
INSERT INTO ledger VALUES (1, 10), (2, 20), (3, 30);
.admin checkpoint
INSERT INTO ledger VALUES (4, 40), (5, 50), (6, 60);
EOF

kill -TERM "$DURABLE_PID"
STATUS=0
wait "$DURABLE_PID" || STATUS=$?
DURABLE_PID=""
[[ $STATUS -eq 0 ]] || { echo "durable daemon exited non-zero ($STATUS)"; exit "$STATUS"; }

# A torn/garbage "newest" checkpoint: recovery must skip it, fall back
# to the older (valid) one, and still replay the WAL suffix.
echo "this is not a checkpoint" >"$DATA_DIR/ckpt-999999999.bf"

"$SERVERD" --port=0 --workers=4 --data-dir="$DATA_DIR" >"$DLOG" 2>&1 &
DURABLE_PID=$!
DADDR=$(wait_addr "$DLOG" "$DURABLE_PID")

COUNT=$(echo "SELECT COUNT(*) AS n FROM ledger;" | shell_run "$DADDR")
grep -qw 6 <<<"$COUNT" ||
  { echo "rows lost after corrupt-checkpoint recovery: $COUNT"; exit 1; }
grep -q "recovery skipping corrupt checkpoint" "$DLOG" ||
  { echo "daemon did not report skipping the corrupt checkpoint"; exit 1; }
echo "checkpoint-corruption recovery OK"

kill -TERM "$DURABLE_PID"
STATUS=0
wait "$DURABLE_PID" || STATUS=$?
DURABLE_PID=""
[[ $STATUS -eq 0 ]] || { echo "durable daemon exited non-zero ($STATUS)"; exit "$STATUS"; }
trap - EXIT
rm -rf "$DATA_DIR"

# ---- Durable kill -9 mid-load + replica-of-recovered-primary leg ----
CRASH_DIR=$(mktemp -d /tmp/bullfrog_crash_data.XXXXXX)
CLOG=$(mktemp /tmp/bullfrog_crash.XXXXXX.log)
CRLOG=$(mktemp /tmp/bullfrog_crash_replica.XXXXXX.log)
ACKS=$(mktemp /tmp/bullfrog_crash_acks.XXXXXX.txt)
CRASH_PID=""
CREPL_PID=""
cleanup_crash() {
  [[ -n $CREPL_PID ]] && kill -9 "$CREPL_PID" 2>/dev/null || true
  [[ -n $CRASH_PID ]] && kill -9 "$CRASH_PID" 2>/dev/null || true
  echo "--- crash-leg primary log ---"; cat "$CLOG"
  echo "--- crash-leg replica log ---"; cat "$CRLOG"
}
trap cleanup_crash EXIT

BF_WAL_FSYNC=1 "$SERVERD" --port=0 --workers=8 --data-dir="$CRASH_DIR" \
  >"$CLOG" 2>&1 &
CRASH_PID=$!
CADDR=$(wait_addr "$CLOG" "$CRASH_PID")
echo "crash-leg primary up at $CADDR (data dir $CRASH_DIR)"

echo "CREATE TABLE crashy (id INT PRIMARY KEY, v INT);" |
  shell_run "$CADDR" >/dev/null

# Stream acked single-row INSERTs through the group-commit WAL, then
# pull the plug mid-load: every "(1 affected)" was fsynced pre-ack.
( for i in $(seq 1 2000); do echo "INSERT INTO crashy VALUES ($i, $i);"; done ) |
  stdbuf -oL "$SHELL_BIN" --connect "$CADDR" >"$ACKS" 2>&1 &
LOADER_PID=$!
for _ in $(seq 1 600); do
  A=$(grep -c "(1 affected)" "$ACKS" || true)
  [[ $A -ge 200 ]] && break
  kill -0 "$LOADER_PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$CRASH_PID"
CRASH_PID=""
wait "$LOADER_PID" 2>/dev/null || true
ACKED=$(grep -c "(1 affected)" "$ACKS" || true)
echo "acked before kill -9: $ACKED inserts"
[[ $ACKED -gt 0 ]] || { echo "no insert was acked before the kill"; exit 1; }
[[ $ACKED -lt 2000 ]] || echo "note: loader finished before the kill landed"

BF_WAL_FSYNC=1 "$SERVERD" --port=0 --workers=8 --data-dir="$CRASH_DIR" \
  >"$CLOG" 2>&1 &
CRASH_PID=$!
CADDR=$(wait_addr "$CLOG" "$CRASH_PID")

RECOVERED=$(echo "SELECT COUNT(*) AS n FROM crashy;" | shell_run "$CADDR" |
  grep -oE '[0-9]+' | sort -n | tail -1)
echo "recovered after restart: ${RECOVERED:-0} rows"
if [[ -z ${RECOVERED:-} || $RECOVERED -lt $ACKED ]]; then
  echo "durable recovery lost acked commits (acked=$ACKED recovered=${RECOVERED:-0})"
  exit 1
fi

# A replica bootstrapped off the recovered primary must converge: the
# LSN-keyed tail stream starts from the recovered log cleanly.
"$SERVERD" --port=0 --workers=8 --replica-of="$CADDR" >"$CRLOG" 2>&1 &
CREPL_PID=$!
CRADDR=$(wait_addr "$CRLOG" "$CREPL_PID")
CAUGHT=""
for _ in $(seq 1 300); do
  if echo ".admin replication" | shell_run "$CRADDR" | grep -q "behind=0"; then
    CAUGHT=1; break
  fi
  sleep 0.1
done
[[ -n $CAUGHT ]] || { echo "post-crash replica never caught up"; exit 1; }
echo ".admin dump" | shell_run "$CADDR" >/tmp/bullfrog_crash_primary_dump.txt
echo ".admin dump" | shell_run "$CRADDR" >/tmp/bullfrog_crash_replica_dump.txt
diff -u /tmp/bullfrog_crash_primary_dump.txt /tmp/bullfrog_crash_replica_dump.txt ||
  { echo "post-crash primary/replica dumps diverged"; exit 1; }
echo "post-crash replica convergence OK"

kill -TERM "$CREPL_PID"
STATUS=0
wait "$CREPL_PID" || STATUS=$?
CREPL_PID=""
[[ $STATUS -eq 0 ]] || { echo "crash-leg replica exited non-zero ($STATUS)"; exit "$STATUS"; }
kill -TERM "$CRASH_PID"
STATUS=0
wait "$CRASH_PID" || STATUS=$?
CRASH_PID=""
[[ $STATUS -eq 0 ]] || { echo "crash-leg primary exited non-zero ($STATUS)"; exit "$STATUS"; }
trap - EXIT
rm -rf "$CRASH_DIR"
echo "durable kill -9 + replica recovery OK (acked=$ACKED recovered=$RECOVERED)"
echo "replication smoke OK"

# ---- Quiesce-free checkpoint leg (BF_SNAPSHOT_READS=1) ----
# With snapshot reads on, `.admin checkpoint` must succeed — hard
# assertion, no retry loop — while a lazy migration is still in flight,
# and a replica bootstrapped from that mid-migration checkpoint must
# converge once the migration completes on the primary.
MVCC_DIR=$(mktemp -d /tmp/bullfrog_mvcc_data.XXXXXX)
MLOG=$(mktemp /tmp/bullfrog_mvcc.XXXXXX.log)
MRLOG=$(mktemp /tmp/bullfrog_mvcc_replica.XXXXXX.log)
MVCC_PID=""
MREPL_PID=""
cleanup_mvcc() {
  [[ -n $MREPL_PID ]] && kill -9 "$MREPL_PID" 2>/dev/null || true
  [[ -n $MVCC_PID ]] && kill -9 "$MVCC_PID" 2>/dev/null || true
  echo "--- mvcc-leg primary log ---"; cat "$MLOG"
  echo "--- mvcc-leg replica log ---"; cat "$MRLOG"
}
trap cleanup_mvcc EXIT

BF_SNAPSHOT_READS=1 "$SERVERD" --port=0 --workers=8 --data-dir="$MVCC_DIR" \
  >"$MLOG" 2>&1 &
MVCC_PID=$!
MADDR=$(wait_addr "$MLOG" "$MVCC_PID")
echo "mvcc-leg primary up at $MADDR (data dir $MVCC_DIR)"

shell_run "$MADDR" <<'SQL' >/dev/null
CREATE TABLE inv (id INT PRIMARY KEY, qty INT);
INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50);
INSERT INTO inv VALUES (6, 60), (7, 70), (8, 80), (9, 90), (10, 100);
SQL

# Submit the migration and checkpoint inside the background-start delay
# window, so the migration is provably still active at capture time.
# Then pull a granule lazily and checkpoint again across real marks.
MIDCKPT=$(shell_run "$MADDR" <<'SQL'
.migrate
CREATE TABLE inv2 PRIMARY KEY (id) AS SELECT id, qty FROM inv;
DROP TABLE inv;
.go
.admin checkpoint
SELECT qty FROM inv2 WHERE id = 3;
.admin checkpoint
SQL
)
CKPTS=$(grep -c "checkpoint ok" <<<"$MIDCKPT" || true)
if [[ $CKPTS -ne 2 ]]; then
  echo "mid-migration checkpoint did not succeed (got $CKPTS/2 oks):"
  echo "$MIDCKPT"
  exit 1
fi
grep -q "(complete)" < <(echo ".progress" | shell_run "$MADDR") &&
  echo "note: migration completed before the checkpoint landed"
echo "quiesce-free mid-migration checkpoints OK"

# Bootstrap a replica while the migration is (likely still) in flight:
# the wire checkpoint now succeeds mid-migration too.
"$SERVERD" --port=0 --workers=8 --replica-of="$MADDR" >"$MRLOG" 2>&1 &
MREPL_PID=$!
MRADDR=$(wait_addr "$MRLOG" "$MREPL_PID")

# Drive the primary's migration to completion and wait for it.
MDONE=""
for _ in $(seq 1 300); do
  if echo ".progress" | shell_run "$MADDR" | grep -q "(complete)"; then
    MDONE=1; break
  fi
  sleep 0.1
done
[[ -n $MDONE ]] || { echo "mvcc-leg migration never completed"; exit 1; }

MCAUGHT=""
for _ in $(seq 1 300); do
  if echo ".admin replication" | shell_run "$MRADDR" | grep -q "behind=0"; then
    MCAUGHT=1; break
  fi
  sleep 0.1
done
[[ -n $MCAUGHT ]] || { echo "mvcc-leg replica never caught up"; exit 1; }

echo ".admin dump" | shell_run "$MADDR" >/tmp/bullfrog_mvcc_primary_dump.txt
echo ".admin dump" | shell_run "$MRADDR" >/tmp/bullfrog_mvcc_replica_dump.txt
diff -u /tmp/bullfrog_mvcc_primary_dump.txt /tmp/bullfrog_mvcc_replica_dump.txt ||
  { echo "mvcc-leg primary/replica dumps diverged"; exit 1; }
grep -q "inv2" /tmp/bullfrog_mvcc_primary_dump.txt ||
  { echo "mvcc-leg dump missing migrated table"; exit 1; }
echo "mid-migration checkpoint bootstrap convergence OK"

kill -TERM "$MREPL_PID"
STATUS=0
wait "$MREPL_PID" || STATUS=$?
MREPL_PID=""
[[ $STATUS -eq 0 ]] || { echo "mvcc-leg replica exited non-zero ($STATUS)"; exit "$STATUS"; }
kill -TERM "$MVCC_PID"
STATUS=0
wait "$MVCC_PID" || STATUS=$?
MVCC_PID=""
[[ $STATUS -eq 0 ]] || { echo "mvcc-leg primary exited non-zero ($STATUS)"; exit "$STATUS"; }
trap - EXIT
rm -rf "$MVCC_DIR"
echo "quiesce-free checkpoint leg OK"
