#!/usr/bin/env bash
# End-to-end smoke test for the network service layer: starts a real
# bullfrog_serverd on an ephemeral loopback port, runs the full
# server_e2e_test suite against it over the wire (BF_SERVER_ADDR mode:
# concurrent clients, live lazy migration via MIGRATE, ADMIN progress
# polling, error paths), scrapes the request-tracing surfaces (ADMIN
# slowlog / timeseries, sampled via BF_TRACE_SAMPLE=1), then SIGTERMs
# the daemon and requires a clean exit. A second, durable-mode leg (BF_WAL_FSYNC=1, --data-dir) streams
# single-row INSERTs through the group-commit WAL, kill -9s the daemon
# mid-load, restarts it, and requires every acked insert to survive
# recovery. Run from the repo root with the build directory as $1
# (default: build). Intended for the sanitizer CI legs: any leak or
# race aborts the daemon with a non-zero exit and fails the script.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/src/server/bullfrog_serverd"
E2E="$BUILD_DIR/tests/server_e2e_test"
SHELL_BIN="$BUILD_DIR/examples/bullfrog_shell"
LOG="$(mktemp /tmp/bullfrog_serverd.XXXXXX.log)"

[[ -x $SERVERD ]] || { echo "missing $SERVERD (build first)"; exit 1; }
[[ -x $E2E ]] || { echo "missing $E2E (build first)"; exit 1; }
[[ -x $SHELL_BIN ]] || { echo "missing $SHELL_BIN (build first)"; exit 1; }

# Plenty of workers: the e2e suite opens many concurrent sessions.
# Trace every statement server-side (the e2e clients send unflagged,
# pre-tracing frames) so the slowlog/timeseries scrapes below have data.
BF_TRACE_SAMPLE=1 BF_TIMESERIES_MS=50 \
  "$SERVERD" --port=0 --workers=16 >"$LOG" 2>&1 &
SERVER_PID=$!
cleanup() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  cat "$LOG"
}
trap cleanup EXIT

# Parse "bullfrog_serverd listening on HOST:PORT" (printed once ready).
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$LOG")
  [[ -n $ADDR ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "serverd died on startup"; exit 1; }
  sleep 0.1
done
[[ -n $ADDR ]] || { echo "serverd never reported its port"; exit 1; }
echo "serverd up at $ADDR (pid $SERVER_PID)"

BF_SERVER_ADDR="$ADDR" "$E2E"

# ADMIN metrics scrape: after the e2e traffic the Prometheus exposition
# must cover every layer (server opcodes, txn counts, migration units).
METRICS=$(echo ".metrics" | "$SHELL_BIN" --connect "$ADDR" 2>&1 |
  sed -e '1d' -e 's/^bullfrog> //')
for fam in \
  bullfrog_server_requests_total \
  'bullfrog_server_request_seconds_count{opcode="query"}' \
  bullfrog_txn_commits \
  'bullfrog_migration_units_migrated{mode="lazy"}' \
  bullfrog_lock_wait_seconds_count; do
  if ! grep -qF "$fam" <<<"$METRICS"; then
    echo "ADMIN metrics scrape missing '$fam':"
    echo "$METRICS"
    exit 1
  fi
done
echo "ADMIN metrics scrape OK"

# Tracing surfaces: with BF_TRACE_SAMPLE=1 every e2e statement was
# traced, so the slowlog must hold span breakdowns with trace ids, and
# the timeseries sampler must have banked counter snapshots. (The e2e
# suite drives live migrations, so the slowest entries carry real
# lock/migration stages.)
SLOWLOG=$(echo ".slowlog" | "$SHELL_BIN" --connect "$ADDR" 2>&1 |
  sed -e '1d' -e 's/^bullfrog> //')
for want in "total=" "id=0x" "ms"; do
  if ! grep -qF "$want" <<<"$SLOWLOG"; then
    echo "ADMIN slowlog scrape missing '$want':"
    echo "$SLOWLOG"
    exit 1
  fi
done
if grep -qF "slowlog empty" <<<"$SLOWLOG"; then
  echo "ADMIN slowlog empty despite BF_TRACE_SAMPLE=1:"
  echo "$SLOWLOG"
  exit 1
fi
echo "ADMIN slowlog scrape OK ($(grep -c 'id=0x' <<<"$SLOWLOG") entries)"

TIMESERIES=$(echo ".timeseries" | "$SHELL_BIN" --connect "$ADDR" 2>&1 |
  sed -e '1d' -e 's/^bullfrog> //')
for want in "# timeseries interval_ms=" "t_ms"; do
  if ! grep -qF "$want" <<<"$TIMESERIES"; then
    echo "ADMIN timeseries scrape missing '$want':"
    echo "$TIMESERIES"
    exit 1
  fi
done
# Header + column line + at least one data row.
TS_ROWS=$(grep -cE '^[0-9]+' <<<"$TIMESERIES" || true)
if [[ $TS_ROWS -lt 1 ]]; then
  echo "ADMIN timeseries has no data rows:"
  echo "$TIMESERIES"
  exit 1
fi
echo "ADMIN timeseries scrape OK ($TS_ROWS rows)"

# Graceful shutdown must drain and exit 0 (sanitizers report on exit).
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
trap - EXIT
cat "$LOG"
if [[ $STATUS -ne 0 ]]; then
  echo "serverd exited non-zero ($STATUS)"
  exit "$STATUS"
fi

# ---- Durable-mode kill -9 mid-load leg (BF_WAL_FSYNC=1) ----
# The group-commit contract under crash: every INSERT the client saw
# acked ("(1 affected)") was fsynced before the ack, so a kill -9 in the
# middle of the load must never lose an acked row after restart.
DATA_DIR=$(mktemp -d /tmp/bullfrog_smoke_data.XXXXXX)
DLOG=$(mktemp /tmp/bullfrog_durable_smoke.XXXXXX.log)
ACKS=$(mktemp /tmp/bullfrog_smoke_acks.XXXXXX.txt)
DURABLE_PID=""
cleanup_durable() {
  [[ -n $DURABLE_PID ]] && kill -9 "$DURABLE_PID" 2>/dev/null || true
  echo "--- durable log ---"; cat "$DLOG"
}
trap cleanup_durable EXIT

BF_WAL_FSYNC=1 "$SERVERD" --port=0 --workers=8 --data-dir="$DATA_DIR" \
  >"$DLOG" 2>&1 &
DURABLE_PID=$!
DADDR=""
for _ in $(seq 1 100); do
  DADDR=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$DLOG")
  [[ -n $DADDR ]] && break
  kill -0 "$DURABLE_PID" 2>/dev/null || { echo "durable serverd died on startup"; exit 1; }
  sleep 0.1
done
[[ -n $DADDR ]] || { echo "durable serverd never reported its port"; exit 1; }
echo "durable serverd up at $DADDR (data dir $DATA_DIR)"

echo "CREATE TABLE crashy (id INT PRIMARY KEY, v INT);" |
  "$SHELL_BIN" --connect "$DADDR" >/dev/null 2>&1

# Stream sequential single-row INSERTs; each "(1 affected)" the shell
# prints is a durably acked commit. Line-buffer the shell's output so we
# can watch the ack count live and pull the plug mid-stream.
( for i in $(seq 1 2000); do echo "INSERT INTO crashy VALUES ($i, $i);"; done ) |
  stdbuf -oL "$SHELL_BIN" --connect "$DADDR" >"$ACKS" 2>&1 &
LOADER_PID=$!
for _ in $(seq 1 600); do
  A=$(grep -c "(1 affected)" "$ACKS" || true)
  [[ $A -ge 200 ]] && break
  kill -0 "$LOADER_PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$DURABLE_PID"
DURABLE_PID=""
wait "$LOADER_PID" 2>/dev/null || true
ACKED=$(grep -c "(1 affected)" "$ACKS" || true)
echo "acked before kill -9: $ACKED inserts"
[[ $ACKED -gt 0 ]] || { echo "no insert was acked before the kill"; exit 1; }
[[ $ACKED -lt 2000 ]] || echo "note: loader finished before the kill landed"

BF_WAL_FSYNC=1 "$SERVERD" --port=0 --workers=8 --data-dir="$DATA_DIR" \
  >"$DLOG" 2>&1 &
DURABLE_PID=$!
DADDR=""
for _ in $(seq 1 100); do
  DADDR=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$DLOG")
  [[ -n $DADDR ]] && break
  kill -0 "$DURABLE_PID" 2>/dev/null || { echo "durable serverd died on restart"; exit 1; }
  sleep 0.1
done
[[ -n $DADDR ]] || { echo "restarted serverd never reported its port"; exit 1; }

# Strip the banner (it carries the port number) before digging out the
# count; the count is the largest number left in the result set.
RECOVERED=$(echo "SELECT COUNT(*) AS n FROM crashy;" |
  "$SHELL_BIN" --connect "$DADDR" 2>&1 | sed -e '1d' -e 's/^bullfrog> //' |
  grep -oE '[0-9]+' | sort -n | tail -1)
echo "recovered after restart: ${RECOVERED:-0} rows"
if [[ -z ${RECOVERED:-} || $RECOVERED -lt $ACKED ]]; then
  echo "durable recovery lost acked commits (acked=$ACKED recovered=${RECOVERED:-0})"
  exit 1
fi
# Upper bound too: the loader is sequential, so at most one insert can be
# in flight (committed but its ack lost to the kill). More than acked+1
# recovered rows would mean phantom commits the client never issued.
if [[ $RECOVERED -gt $((ACKED + 1)) ]]; then
  echo "durable recovery has extra rows (acked=$ACKED recovered=$RECOVERED)"
  exit 1
fi

kill -TERM "$DURABLE_PID"
STATUS=0
wait "$DURABLE_PID" || STATUS=$?
DURABLE_PID=""
if [[ $STATUS -ne 0 ]]; then
  echo "durable serverd exited non-zero ($STATUS)"
  exit "$STATUS"
fi
trap - EXIT
rm -rf "$DATA_DIR"
echo "durable kill -9 recovery OK (acked=$ACKED recovered=$RECOVERED)"
echo "server smoke OK"
