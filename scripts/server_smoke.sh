#!/usr/bin/env bash
# End-to-end smoke test for the network service layer: starts a real
# bullfrog_serverd on an ephemeral loopback port, runs the full
# server_e2e_test suite against it over the wire (BF_SERVER_ADDR mode:
# concurrent clients, live lazy migration via MIGRATE, ADMIN progress
# polling, error paths), then SIGTERMs the daemon and requires a clean
# exit. Run from the repo root with the build directory as $1
# (default: build). Intended for the sanitizer CI legs: any leak or
# race aborts the daemon with a non-zero exit and fails the script.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/src/server/bullfrog_serverd"
E2E="$BUILD_DIR/tests/server_e2e_test"
SHELL_BIN="$BUILD_DIR/examples/bullfrog_shell"
LOG="$(mktemp /tmp/bullfrog_serverd.XXXXXX.log)"

[[ -x $SERVERD ]] || { echo "missing $SERVERD (build first)"; exit 1; }
[[ -x $E2E ]] || { echo "missing $E2E (build first)"; exit 1; }
[[ -x $SHELL_BIN ]] || { echo "missing $SHELL_BIN (build first)"; exit 1; }

# Plenty of workers: the e2e suite opens many concurrent sessions.
"$SERVERD" --port=0 --workers=16 >"$LOG" 2>&1 &
SERVER_PID=$!
cleanup() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  cat "$LOG"
}
trap cleanup EXIT

# Parse "bullfrog_serverd listening on HOST:PORT" (printed once ready).
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$LOG")
  [[ -n $ADDR ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "serverd died on startup"; exit 1; }
  sleep 0.1
done
[[ -n $ADDR ]] || { echo "serverd never reported its port"; exit 1; }
echo "serverd up at $ADDR (pid $SERVER_PID)"

BF_SERVER_ADDR="$ADDR" "$E2E"

# ADMIN metrics scrape: after the e2e traffic the Prometheus exposition
# must cover every layer (server opcodes, txn counts, migration units).
METRICS=$(echo ".metrics" | "$SHELL_BIN" --connect "$ADDR" 2>&1 |
  sed -e '1d' -e 's/^bullfrog> //')
for fam in \
  bullfrog_server_requests_total \
  'bullfrog_server_request_seconds_count{opcode="query"}' \
  bullfrog_txn_commits \
  'bullfrog_migration_units_migrated{mode="lazy"}' \
  bullfrog_lock_wait_seconds_count; do
  if ! grep -qF "$fam" <<<"$METRICS"; then
    echo "ADMIN metrics scrape missing '$fam':"
    echo "$METRICS"
    exit 1
  fi
done
echo "ADMIN metrics scrape OK"

# Graceful shutdown must drain and exit 0 (sanitizers report on exit).
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
trap - EXIT
cat "$LOG"
if [[ $STATUS -ne 0 ]]; then
  echo "serverd exited non-zero ($STATUS)"
  exit "$STATUS"
fi
echo "server smoke OK"
