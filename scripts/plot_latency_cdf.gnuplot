# Renders a latency CDF figure (Figures 4/6/8 style) from bench output.
# Usage:
#   gnuplot -e "infile='fig04.txt'; series='moderate/eager/NewOrder moderate/bullfrog-bitmap/NewOrder'" \
#           scripts/plot_latency_cdf.gnuplot > fig04.png
# Rows are "<series> <latency_s> <cumulative_fraction>".
set terminal pngcairo size 1000,420
set xlabel "latency (seconds)"
set ylabel "fraction of txns"
set logscale x
set yrange [0:1]
set key outside right
set grid ytics
plot for [s in series] \
  sprintf("< grep '^%s ' %s", s, infile) using 2:3 with lines lw 2 title s
