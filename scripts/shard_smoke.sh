#!/usr/bin/env bash
# End-to-end smoke test for the shared-nothing sharded daemon
# (bullfrog_serverd --shards=N): boots 4 shards, routes DML through the
# wire protocol, drives a cross-shard lazy migration and scrapes ADMIN
# "shards" plus the tracing surfaces (ADMIN slowlog / timeseries, via
# BF_TRACE_SAMPLE=1) mid-drain (per-shard progress must aggregate and
# converge to 1.0), requires a clean SIGTERM exit, then runs a durable leg
# (BF_WAL_FSYNC=1, --data-dir): kill -9 mid-load, restart, and every
# shard's WAL segment must recover — acked <= recovered <= acked+1.
# Run from the repo root with the build directory as $1 (default:
# build). Intended for the sanitizer CI legs.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/src/server/bullfrog_serverd"
SHELL_BIN="$BUILD_DIR/examples/bullfrog_shell"
SHARDS=4
LOG="$(mktemp /tmp/bullfrog_shardd.XXXXXX.log)"

[[ -x $SERVERD ]] || { echo "missing $SERVERD (build first)"; exit 1; }
[[ -x $SHELL_BIN ]] || { echo "missing $SHELL_BIN (build first)"; exit 1; }

run_sql() {  # run_sql ADDR "sql..." — echoes the shell's output sans banner
  "$SHELL_BIN" --connect "$1" <<<"$2" 2>&1 | sed -e '1d' -e 's/^bullfrog> //'
}

wait_addr() {  # wait_addr LOGFILE PID -> prints HOST:PORT
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^bullfrog_serverd listening on \(.*\)$/\1/p' "$1")
    [[ -n $addr ]] && { echo "$addr"; return 0; }
    kill -0 "$2" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

# Trace every statement server-side (the shell sends unflagged frames)
# so the mid-migration slowlog/timeseries scrapes below have data.
BF_TRACE_SAMPLE=1 BF_TIMESERIES_MS=50 \
  "$SERVERD" --port=0 --workers=8 --shards=$SHARDS >"$LOG" 2>&1 &
SERVER_PID=$!
cleanup() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  cat "$LOG"
}
trap cleanup EXIT

ADDR=$(wait_addr "$LOG" "$SERVER_PID") ||
  { echo "sharded serverd never reported its port"; exit 1; }
grep -q "^shards=$SHARDS$" "$LOG" ||
  { echo "daemon did not report shards=$SHARDS"; exit 1; }
echo "sharded serverd up at $ADDR ($SHARDS shards, pid $SERVER_PID)"

# Routed DML: the rows must split across shards and come back merged.
run_sql "$ADDR" "CREATE TABLE kv (id INT PRIMARY KEY, val INT);" >/dev/null
(
  echo -n ""
  for i in $(seq 0 199); do echo "INSERT INTO kv VALUES ($i, $((i * 10)));"; done
) | "$SHELL_BIN" --connect "$ADDR" >/dev/null 2>&1

AGG=$(run_sql "$ADDR" "SELECT COUNT(*) AS n, SUM(val) AS s, AVG(val) AS a FROM kv;")
grep -q "200" <<<"$AGG" || { echo "bad cross-shard COUNT: $AGG"; exit 1; }
grep -q "199000" <<<"$AGG" || { echo "bad cross-shard SUM: $AGG"; exit 1; }
grep -q "995" <<<"$AGG" || { echo "bad cross-shard AVG: $AGG"; exit 1; }
POINT=$(run_sql "$ADDR" "SELECT val FROM kv WHERE id = 42;")
grep -q "420" <<<"$POINT" || { echo "bad routed point read: $POINT"; exit 1; }
echo "router OK (split insert, point read, merged aggregates)"

# ADMIN "shards" before any migration: idle coordinator, one line per shard.
SHARDS_IDLE=$("$SHELL_BIN" --connect "$ADDR" <<<".admin shards" 2>&1)
grep -q "state=idle" <<<"$SHARDS_IDLE" ||
  { echo "ADMIN shards missing idle state: $SHARDS_IDLE"; exit 1; }
[[ $(grep -c "shard [0-9]:" <<<"$SHARDS_IDLE") -eq $SHARDS ]] ||
  { echo "ADMIN shards missing per-shard lines: $SHARDS_IDLE"; exit 1; }

# Cross-shard lazy migration via the MIGRATE opcode, scraped mid-drain.
printf '.migrate\nCREATE TABLE kv2 PRIMARY KEY (id) AS SELECT id, val, val + val AS dbl FROM kv;\nDROP TABLE kv;\n.go\n.quit\n' |
  "$SHELL_BIN" --connect "$ADDR" 2>&1 | grep -q "migration live" ||
  { echo "MIGRATE submit failed"; exit 1; }

MID=$("$SHELL_BIN" --connect "$ADDR" <<<".admin shards" 2>&1)
grep -Eq "state=(draining|complete)" <<<"$MID" ||
  { echo "ADMIN shards not draining after MIGRATE: $MID"; exit 1; }
echo "mid-migration ADMIN shards scrape:"
echo "$MID" | grep -E "coordinated|shard [0-9]:" || true

# Lazy reads against the new schema work while the shards drain.
MIG_READ=$(run_sql "$ADDR" "SELECT dbl FROM kv2 WHERE id = 42;")
grep -q "840" <<<"$MIG_READ" || { echo "bad mid-migration read: $MIG_READ"; exit 1; }
# Touch more cold keys (one per shard, roughly): each first-touch read
# pulls its granule and lands a migrate_pull-attributed trace.
for id in 7 99 150 183; do
  run_sql "$ADDR" "SELECT dbl FROM kv2 WHERE id = $id;" >/dev/null
done

# Mid-migration tracing scrapes: every statement above was traced
# (BF_TRACE_SAMPLE=1), so the slowlog must show span breakdowns — the
# migrated reads carry migrate_pull attribution — and the timeseries
# ring must already hold snapshots (top-level sampler: the aggregate
# migration_progress / units_migrated counters span all shards).
SLOWLOG=$(run_sql "$ADDR" ".slowlog")
for want in "total=" "id=0x"; do
  if ! grep -qF "$want" <<<"$SLOWLOG"; then
    echo "mid-migration ADMIN slowlog missing '$want':"
    echo "$SLOWLOG"
    exit 1
  fi
done
if ! grep -qF "migrate_pull" <<<"$SLOWLOG"; then
  echo "mid-migration ADMIN slowlog has no migrate_pull attribution:"
  echo "$SLOWLOG"
  exit 1
fi
echo "mid-migration ADMIN slowlog OK ($(grep -c 'id=0x' <<<"$SLOWLOG") entries)"

TIMESERIES=$(run_sql "$ADDR" ".timeseries")
for want in "# timeseries interval_ms=" "t_ms" "migration_progress"; do
  if ! grep -qF "$want" <<<"$TIMESERIES"; then
    echo "mid-migration ADMIN timeseries missing '$want':"
    echo "$TIMESERIES"
    exit 1
  fi
done
TS_ROWS=$(grep -cE '^[0-9]+' <<<"$TIMESERIES" || true)
if [[ $TS_ROWS -lt 1 ]]; then
  echo "mid-migration ADMIN timeseries has no data rows:"
  echo "$TIMESERIES"
  exit 1
fi
echo "mid-migration ADMIN timeseries OK ($TS_ROWS rows)"

# The coordinator must converge: progress 1.0 and every shard complete.
DONE=""
for _ in $(seq 1 200); do
  REPORT=$("$SHELL_BIN" --connect "$ADDR" <<<".admin shards" 2>&1)
  if grep -q "state=complete" <<<"$REPORT"; then DONE=1; break; fi
  sleep 0.1
done
[[ -n $DONE ]] || { echo "coordinated migration never converged: $REPORT"; exit 1; }
[[ $(grep -c "complete=1" <<<"$REPORT") -eq $SHARDS ]] ||
  { echo "not all shards report complete: $REPORT"; exit 1; }
grep -q "progress=1" <<<"$REPORT" ||
  { echo "aggregate progress != 1: $REPORT"; exit 1; }
# Per-shard units must sum to the reported total.
TOTAL=$(sed -n 's/.*units_total=\([0-9]*\).*/\1/p' <<<"$REPORT")
SUM=$(grep -oE "units=[0-9]+" <<<"$REPORT" | cut -d= -f2 |
  awk '{s += $1} END {print s + 0}')
[[ -n $TOTAL && "$TOTAL" -eq "$SUM" ]] ||
  { echo "per-shard units ($SUM) != units_total ($TOTAL): $REPORT"; exit 1; }
[[ $TOTAL -gt 0 ]] || { echo "migration migrated zero units"; exit 1; }
echo "coordinated migration converged (units_total=$TOTAL across $SHARDS shards)"

# Merged ADMIN metrics: the scrape must carry every shard's section.
METRICS=$("$SHELL_BIN" --connect "$ADDR" <<<".metrics" 2>&1)
for i in $(seq 0 $((SHARDS - 1))); do
  grep -q "# shard $i" <<<"$METRICS" ||
    { echo "ADMIN metrics missing shard $i section"; exit 1; }
done
grep -q "bullfrog_server_requests_total" <<<"$METRICS" ||
  { echo "ADMIN metrics missing server families"; exit 1; }
echo "merged ADMIN metrics OK"

# Graceful shutdown must drain and exit 0 (sanitizers report on exit).
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
trap - EXIT
if [[ $STATUS -ne 0 ]]; then
  cat "$LOG"
  echo "sharded serverd exited non-zero ($STATUS)"
  exit "$STATUS"
fi

# ---- Durable kill -9 leg: per-shard WAL segments (BF_WAL_FSYNC=1) ----
DATA_DIR=$(mktemp -d /tmp/bullfrog_shard_data.XXXXXX)
DLOG=$(mktemp /tmp/bullfrog_shard_durable.XXXXXX.log)
ACKS=$(mktemp /tmp/bullfrog_shard_acks.XXXXXX.txt)
DURABLE_PID=""
cleanup_durable() {
  [[ -n $DURABLE_PID ]] && kill -9 "$DURABLE_PID" 2>/dev/null || true
  echo "--- durable log ---"; cat "$DLOG"
}
trap cleanup_durable EXIT

BF_WAL_FSYNC=1 "$SERVERD" --port=0 --workers=8 --shards=$SHARDS \
  --data-dir="$DATA_DIR" >"$DLOG" 2>&1 &
DURABLE_PID=$!
DADDR=$(wait_addr "$DLOG" "$DURABLE_PID") ||
  { echo "durable sharded serverd died on startup"; exit 1; }
echo "durable sharded serverd up at $DADDR (data dir $DATA_DIR)"

run_sql "$DADDR" "CREATE TABLE crashy (id INT PRIMARY KEY, v INT);" >/dev/null

# Sequential single-row INSERTs: every "(1 affected)" is a durably acked
# commit on some shard's WAL. Pull the plug mid-stream.
( for i in $(seq 1 2000); do echo "INSERT INTO crashy VALUES ($i, $i);"; done ) |
  stdbuf -oL "$SHELL_BIN" --connect "$DADDR" >"$ACKS" 2>&1 &
LOADER_PID=$!
for _ in $(seq 1 600); do
  A=$(grep -c "(1 affected)" "$ACKS" || true)
  [[ $A -ge 200 ]] && break
  kill -0 "$LOADER_PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$DURABLE_PID"
DURABLE_PID=""
wait "$LOADER_PID" 2>/dev/null || true
ACKED=$(grep -c "(1 affected)" "$ACKS" || true)
echo "acked before kill -9: $ACKED inserts"
[[ $ACKED -gt 0 ]] || { echo "no insert was acked before the kill"; exit 1; }

# Every shard must have its own WAL segment directory, plus the shard
# count identity file.
[[ -f $DATA_DIR/shards.meta ]] || { echo "missing shards.meta"; exit 1; }
for i in $(seq 0 $((SHARDS - 1))); do
  [[ -d $DATA_DIR/shard-$i ]] || { echo "missing shard-$i WAL dir"; exit 1; }
done

# Restarting with a different shard count must be refused (resharding
# would silently re-home keys).
if BF_WAL_FSYNC=1 "$SERVERD" --port=0 --shards=2 --data-dir="$DATA_DIR" \
  >/dev/null 2>&1; then
  echo "reshard open unexpectedly succeeded"; exit 1
fi

BF_WAL_FSYNC=1 "$SERVERD" --port=0 --workers=8 --shards=$SHARDS \
  --data-dir="$DATA_DIR" >"$DLOG" 2>&1 &
DURABLE_PID=$!
DADDR=$(wait_addr "$DLOG" "$DURABLE_PID") ||
  { echo "durable sharded serverd died on restart"; exit 1; }

RECOVERED=$(run_sql "$DADDR" "SELECT COUNT(*) AS n FROM crashy;" |
  grep -oE '[0-9]+' | sort -n | tail -1)
echo "recovered after restart: ${RECOVERED:-0} rows"
if [[ -z ${RECOVERED:-} || $RECOVERED -lt $ACKED ]]; then
  echo "sharded recovery lost acked commits (acked=$ACKED recovered=${RECOVERED:-0})"
  exit 1
fi
# Sequential loader: at most one insert in flight when the plug pulled.
if [[ $RECOVERED -gt $((ACKED + 1)) ]]; then
  echo "sharded recovery has extra rows (acked=$ACKED recovered=$RECOVERED)"
  exit 1
fi

kill -TERM "$DURABLE_PID"
STATUS=0
wait "$DURABLE_PID" || STATUS=$?
DURABLE_PID=""
if [[ $STATUS -ne 0 ]]; then
  cat "$DLOG"
  echo "durable sharded serverd exited non-zero ($STATUS)"
  exit "$STATUS"
fi
trap - EXIT
rm -rf "$DATA_DIR"
echo "sharded durable kill -9 recovery OK (acked=$ACKED recovered=$RECOVERED)"
echo "shard smoke OK"
