// Compares the three migration strategies (§4) on the same table-split
// migration: BullFrog's lazy approach, the eager baseline (blocks all
// affected requests for the whole copy), and the multi-step baseline
// (background shadow copy + dual writes, switch when caught up).
//
// Prints, for each strategy: how long Submit blocked, when the first
// post-migration query could be answered, and when all data had moved.

#include <cstdio>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "common/env.h"

using namespace bullfrog;

namespace {

constexpr int kRows = 50000;

Status Load(Database* db) {
  BF_RETURN_NOT_OK(db->CreateTable(SchemaBuilder("events")
                                       .AddColumn("id", ValueType::kInt64,
                                                  false)
                                       .AddColumn("kind", ValueType::kInt64)
                                       .AddColumn("payload",
                                                  ValueType::kString)
                                       .SetPrimaryKey({"id"})
                                       .Build()));
  std::vector<Tuple> rows;
  rows.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    rows.push_back(Tuple{Value::Int(i), Value::Int(i % 7),
                         Value::Str("payload-" + std::to_string(i))});
  }
  return db->BulkInsert("events", rows);
}

MigrationPlan SplitPlan() {
  MigrationPlan plan;
  plan.name = "split_events";
  plan.new_tables = {SchemaBuilder("event_keys")
                         .AddColumn("id", ValueType::kInt64, false)
                         .AddColumn("kind", ValueType::kInt64)
                         .SetPrimaryKey({"id"})
                         .Build(),
                     SchemaBuilder("event_payloads")
                         .AddColumn("id", ValueType::kInt64, false)
                         .AddColumn("payload", ValueType::kString)
                         .SetPrimaryKey({"id"})
                         .Build()};
  plan.retire_tables = {"events"};
  MigrationStatement stmt;
  stmt.name = "split";
  stmt.category = MigrationCategory::kOneToMany;
  stmt.input_tables = {"events"};
  stmt.output_tables = {"event_keys", "event_payloads"};
  stmt.provenance.AddPassThrough("id", "events", "id");
  stmt.provenance.AddPassThrough("kind", "events", "kind");
  stmt.provenance.AddPassThrough("payload", "events", "payload");
  stmt.row_transform = [](const Tuple& in) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{0, Tuple{in[0], in[1]}},
                                  TargetRow{1, Tuple{in[0], in[2]}}};
  };
  plan.statements.push_back(std::move(stmt));
  return plan;
}

void RunStrategy(MigrationStrategy strategy, const char* name) {
  Database db;
  if (!Load(&db).ok()) return;

  MigrationController::SubmitOptions opts;
  opts.strategy = strategy;
  opts.lazy.background_start_delay_ms = 50;
  opts.lazy.background_pause_us = 0;
  opts.multistep.pause_us = 0;

  Stopwatch total;
  Stopwatch submit_block;
  Status st = db.SubmitMigration(SplitPlan(), opts);
  const double submit_blocked_ms = submit_block.ElapsedMillis();
  if (!st.ok()) {
    std::fprintf(stderr, "%s submit: %s\n", name, st.ToString().c_str());
    return;
  }

  // First post-migration point query (multistep keeps serving the old
  // schema until cutover, so query whichever schema is live).
  Stopwatch first_query;
  double first_query_ms = -1;
  for (;;) {
    const bool new_schema = db.controller().UsesNewSchema();
    auto s = db.BeginSession({new_schema ? "event_keys" : "events"});
    auto rows = db.Select(&s, new_schema ? "event_keys" : "events",
                          Eq(Col("id"), LitInt(12345)));
    (void)db.Commit(&s);
    if (rows.ok() && !rows->empty()) {
      first_query_ms = first_query.ElapsedMillis();
      break;
    }
    Clock::SleepMillis(1);
  }

  while (!db.controller().IsComplete() && total.ElapsedSeconds() < 120) {
    Clock::SleepMillis(5);
  }
  std::printf(
      "%-10s submit blocked %7.1f ms | first query answered after %7.1f ms "
      "| all data moved after %7.1f ms\n",
      name, submit_blocked_ms, first_query_ms, total.ElapsedMillis() * 1.0);
}

}  // namespace

int main() {
  std::printf("table split of %d rows under three strategies:\n\n", kRows);
  RunStrategy(MigrationStrategy::kEager, "eager");
  RunStrategy(MigrationStrategy::kMultiStep, "multistep");
  RunStrategy(MigrationStrategy::kLazy, "bullfrog");
  std::printf(
      "\nnote: eager blocks the submitting client (and gates every request "
      "that touches the new tables) for the whole copy; bullfrog's submit "
      "is a logical switch and queries are served immediately, migrating "
      "lazily.\n");
  return 0;
}
