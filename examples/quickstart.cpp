// Quickstart: create a table, load it, run a single-step schema migration
// (add a derived column) with zero downtime, and query through it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "bullfrog/database.h"
#include "common/clock.h"

using namespace bullfrog;

int main() {
  Database db;

  // 1. Original schema: accounts(id, owner, cents).
  Status st = db.CreateTable(SchemaBuilder("accounts")
                                 .AddColumn("id", ValueType::kInt64, false)
                                 .AddColumn("owner", ValueType::kString)
                                 .AddColumn("cents", ValueType::kInt64)
                                 .SetPrimaryKey({"id"})
                                 .Build());
  if (!st.ok()) {
    std::fprintf(stderr, "create: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<Tuple> rows;
  for (int i = 0; i < 10000; ++i) {
    rows.push_back(Tuple{Value::Int(i), Value::Str("user" + std::to_string(i)),
                         Value::Int(i * 100)});
  }
  st = db.BulkInsert("accounts", rows);
  if (!st.ok()) return 1;
  std::printf("loaded %d rows into accounts\n", 10000);

  // 2. Single-step migration: accounts -> accounts_v2 with a derived
  //    `dollars` column and a dropped `owner` prefix. The old schema is
  //    retired the instant Submit returns; data moves lazily.
  MigrationPlan plan;
  plan.name = "add_dollars";
  plan.new_tables = {SchemaBuilder("accounts_v2")
                         .AddColumn("id", ValueType::kInt64, false)
                         .AddColumn("owner", ValueType::kString)
                         .AddColumn("cents", ValueType::kInt64)
                         .AddColumn("dollars", ValueType::kDouble)
                         .SetPrimaryKey({"id"})
                         .Build()};
  plan.retire_tables = {"accounts"};
  MigrationStatement stmt;
  stmt.name = "derive_dollars";
  stmt.category = MigrationCategory::kOneToOne;
  stmt.input_tables = {"accounts"};
  stmt.output_tables = {"accounts_v2"};
  stmt.provenance.AddPassThrough("id", "accounts", "id");
  stmt.provenance.AddPassThrough("owner", "accounts", "owner");
  stmt.provenance.AddPassThrough("cents", "accounts", "cents");
  stmt.provenance.AddDerived("dollars");
  stmt.row_transform = [](const Tuple& in) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{
        0, Tuple{in[0], in[1], in[2],
                 Value::Double(static_cast<double>(in[2].AsInt()) / 100.0)}}};
  };
  plan.statements.push_back(std::move(stmt));

  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 100;
  Stopwatch submit_time;
  st = db.SubmitMigration(std::move(plan), opts);
  if (!st.ok()) {
    std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("migration submitted in %.3f ms (logical switch only)\n",
              submit_time.ElapsedMillis() / 1.0);

  // 3. Query the new schema immediately: the point lookup migrates only
  //    the row it needs.
  auto session = db.BeginSession({"accounts_v2"});
  auto result = db.Select(&session, "accounts_v2", Eq(Col("id"), LitInt(42)));
  if (!result.ok() || result->empty()) return 1;
  std::printf("accounts_v2[id=42]: owner=%s dollars=%s\n",
              result->front().second[1].ToString().c_str(),
              result->front().second[3].ToString().c_str());
  (void)db.Commit(&session);
  std::printf("rows physically migrated so far: %llu of %d\n",
              static_cast<unsigned long long>(
                  db.catalog().FindTable("accounts_v2")->NumLiveRows()),
              10000);

  // 4. Background threads finish the rest.
  Stopwatch wait;
  while (!db.controller().IsComplete() && wait.ElapsedSeconds() < 30) {
    Clock::SleepMillis(10);
  }
  std::printf("migration complete: %llu rows in accounts_v2, old table %s\n",
              static_cast<unsigned long long>(
                  db.catalog().FindTable("accounts_v2")->NumLiveRows()),
              std::string(TableStateName(db.catalog().GetState("accounts")))
                  .c_str());
  return db.controller().IsComplete() ? 0 : 1;
}
