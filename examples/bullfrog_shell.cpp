// A minimal interactive shell over the SQL engine. Reads ';'-terminated
// statements from stdin and prints results. Two modes:
//
//   bullfrog_shell                       embedded in-process database
//   bullfrog_shell --connect host:port   remote bullfrog_serverd session
//                                        over the wire protocol
//
// Meta-commands:
//
//   .migrate        begin collecting a migration script (the paper's
//                   CREATE TABLE ... AS SELECT / DROP TABLE DDL)
//   .go             submit the collected script as a single-step lazy
//                   migration
//   .progress       print migration progress
//   .report         print the server's ADMIN report (remote mode)
//   .metrics        print the Prometheus metrics scrape (both modes)
//   .trace          print the migration trace-event log (both modes)
//   .admin CMD      send a raw ADMIN command (remote mode) — e.g.
//                   `.admin replication`, `.admin dump`, `.admin checkpoint`
//   .profile [ID]   span tree of the newest (or a specific) traced request;
//                   embedded mode traces every statement automatically
//   .slowlog        K slowest traced statements with stage breakdowns
//   .timeseries     counter snapshots over time (embedded: starts sampler)
//   .quit           exit
//
// Example session:
//   CREATE TABLE users (id INT PRIMARY KEY, name TEXT);
//   INSERT INTO users VALUES (1, 'ada');
//   .migrate
//   CREATE TABLE users_v2 PRIMARY KEY (id) AS
//     SELECT id, name, id * 2 AS twice FROM users;
//   DROP TABLE users;
//   .go
//   SELECT * FROM users_v2 WHERE id = 1;

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "server/client.h"
#include "sql/engine.h"

using namespace bullfrog;

namespace {

/// Renders a remote result set in the engine's QueryResult text format.
void PrintResultSet(const server::ResultSet& rs) {
  if (!rs.columns.empty()) {
    sql::SqlEngine::QueryResult as_local;
    as_local.columns = rs.columns;
    as_local.rows = rs.rows;
    std::printf("%s", as_local.ToString().c_str());
    std::printf("(%zu row%s)\n", rs.rows.size(),
                rs.rows.size() == 1 ? "" : "s");
  } else if (rs.affected > 0) {
    std::printf("(%llu affected)\n",
                static_cast<unsigned long long>(rs.affected));
  } else {
    std::printf("ok\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--connect host:port]\n", argv[0]);
      return 2;
    }
  }

  // Remote mode: one wire session; embedded mode: in-process engine.
  std::unique_ptr<Database> db;
  std::unique_ptr<sql::SqlEngine> engine;
  server::Client client;
  if (connect.empty()) {
    db = std::make_unique<Database>();
    engine = std::make_unique<sql::SqlEngine>(db.get());
    // An interactive session is cheap enough to trace every statement,
    // so .profile/.slowlog always have data (BF_TRACE_SAMPLE overrides).
    if (std::getenv("BF_TRACE_SAMPLE") == nullptr) {
      db->trace_sampler().set_every(1);
    }
  } else {
    Status s = client.Connect(connect);
    if (!s.ok()) {
      std::fprintf(stderr, "connect %s: %s\n", connect.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  const bool remote = !connect.empty();

  std::string buffer;
  std::string migration_script;
  bool collecting_migration = false;
  std::string line;

  std::printf("bullfrog shell%s — ';' terminates statements, .quit exits\n",
              remote ? (" (connected to " + connect + ")").c_str() : "");
  while (true) {
    std::printf(collecting_migration ? "migrate> " : "bullfrog> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (line == ".quit" || line == ".exit") break;
    if (line == ".migrate") {
      collecting_migration = true;
      migration_script.clear();
      continue;
    }
    if (line == ".progress") {
      if (remote) {
        auto p = client.MigrationProgress();
        if (!p.ok()) {
          std::printf("error: %s\n", p.status().ToString().c_str());
        } else {
          std::printf("migration progress: %.0f%%%s\n", *p * 100,
                      *p >= 1.0 ? " (complete)" : "");
        }
      } else {
        std::printf("migration progress: %.0f%%%s\n",
                    db->controller().Progress() * 100,
                    db->controller().IsComplete() ? " (complete)" : "");
      }
      continue;
    }
    if (line == ".report") {
      if (remote) {
        auto r = client.Admin("report");
        std::printf("%s", r.ok() ? r->c_str()
                                 : (r.status().ToString() + "\n").c_str());
      } else {
        std::printf("%s", db->controller().StatusReport().c_str());
      }
      continue;
    }
    if (line == ".metrics" || line == ".trace") {
      std::string text;
      if (remote) {
        auto r = client.Admin(line.substr(1));
        if (!r.ok()) {
          std::printf("error: %s\n", r.status().ToString().c_str());
          continue;
        }
        text = std::move(*r);
      } else {
        text = line == ".metrics" ? db->metrics().RenderPrometheus()
                                  : db->tracer().Render();
      }
      std::printf("%s", text.c_str());
      if (text.empty() || text.back() != '\n') std::printf("\n");
      continue;
    }
    if (line.rfind(".profile", 0) == 0 || line == ".slowlog" ||
        line == ".timeseries") {
      // Remote: these are straight ADMIN passthroughs ("profile [id]",
      // "slowlog", "timeseries"); embedded: render directly.
      std::string text;
      if (remote) {
        auto r = client.Admin(line.substr(1));
        if (!r.ok()) {
          std::printf("error: %s\n", r.status().ToString().c_str());
          continue;
        }
        text = std::move(*r);
      } else if (line.rfind(".profile", 0) == 0) {
        uint64_t id = 0;
        if (line.size() > 9) id = std::strtoull(line.c_str() + 9, nullptr, 0);
        text = db->profiles().RenderProfile(id);
      } else if (line == ".slowlog") {
        text = db->profiles().RenderSlowlog();
      } else {
        if (db->timeseries() == nullptr) db->StartTimeseries();
        text = db->timeseries()->Render();
      }
      std::printf("%s", text.c_str());
      if (text.empty() || text.back() != '\n') std::printf("\n");
      continue;
    }
    if (line.rfind(".admin ", 0) == 0) {
      if (!remote) {
        std::printf("error: .admin requires --connect\n");
        continue;
      }
      auto r = client.Admin(line.substr(7));
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        continue;
      }
      std::printf("%s", r->c_str());
      if (r->empty() || r->back() != '\n') std::printf("\n");
      continue;
    }
    if (line == ".go") {
      collecting_migration = false;
      Status s;
      if (remote) {
        s = client.Migrate(migration_script);
      } else {
        MigrationController::SubmitOptions opts;
        opts.strategy = MigrationStrategy::kLazy;
        opts.lazy.background_start_delay_ms = 1000;
        s = engine->SubmitMigrationScript(migration_script, opts);
      }
      if (s.ok()) {
        std::printf("migration live (logical switch done)\n");
      } else if (s.IsQueued()) {
        // The message carries the queue position; the train entry starts
        // automatically when its predecessor drains.
        std::printf("migration queued (%s)\n", s.message().c_str());
      } else {
        std::printf("%s\n", s.ToString().c_str());
      }
      continue;
    }

    if (collecting_migration) {
      migration_script += line + "\n";
      continue;
    }

    buffer += line + "\n";
    if (buffer.find(';') == std::string::npos) continue;  // Multi-line.
    if (remote) {
      auto result = client.Query(buffer);
      buffer.clear();
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        if (result.status().IsUnavailable()) return 1;  // Connection gone.
        continue;
      }
      PrintResultSet(*result);
      continue;
    }
    auto result = engine->Execute(buffer);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->columns.empty()) {
      std::printf("%s", result->ToString().c_str());
      std::printf("(%zu row%s)\n", result->rows.size(),
                  result->rows.size() == 1 ? "" : "s");
    } else if (result->affected > 0) {
      std::printf("(%llu affected)\n",
                  static_cast<unsigned long long>(result->affected));
    } else {
      std::printf("ok\n");
    }
  }
  return 0;
}
