// A minimal interactive shell over the SQL engine. Reads ';'-terminated
// statements from stdin and prints results. Two meta-commands:
//
//   .migrate        begin collecting a migration script (the paper's
//                   CREATE TABLE ... AS SELECT / DROP TABLE DDL)
//   .go             submit the collected script as a single-step lazy
//                   migration
//   .progress       print migration progress
//   .quit           exit
//
// Example session:
//   CREATE TABLE users (id INT PRIMARY KEY, name TEXT);
//   INSERT INTO users VALUES (1, 'ada');
//   .migrate
//   CREATE TABLE users_v2 PRIMARY KEY (id) AS
//     SELECT id, name, id * 2 AS twice FROM users;
//   DROP TABLE users;
//   .go
//   SELECT * FROM users_v2 WHERE id = 1;

#include <cstdio>
#include <iostream>
#include <string>

#include "sql/engine.h"

using namespace bullfrog;

int main() {
  Database db;
  sql::SqlEngine engine(&db);
  std::string buffer;
  std::string migration_script;
  bool collecting_migration = false;
  std::string line;

  std::printf("bullfrog shell — ';' terminates statements, .quit exits\n");
  while (true) {
    std::printf(collecting_migration ? "migrate> " : "bullfrog> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (line == ".quit" || line == ".exit") break;
    if (line == ".migrate") {
      collecting_migration = true;
      migration_script.clear();
      continue;
    }
    if (line == ".progress") {
      std::printf("migration progress: %.0f%%%s\n",
                  db.controller().Progress() * 100,
                  db.controller().IsComplete() ? " (complete)" : "");
      continue;
    }
    if (line == ".go") {
      collecting_migration = false;
      MigrationController::SubmitOptions opts;
      opts.strategy = MigrationStrategy::kLazy;
      opts.lazy.background_start_delay_ms = 1000;
      Status s = engine.SubmitMigrationScript(migration_script, opts);
      std::printf("%s\n", s.ok() ? "migration live (logical switch done)"
                                 : s.ToString().c_str());
      continue;
    }

    if (collecting_migration) {
      migration_script += line + "\n";
      continue;
    }

    buffer += line + "\n";
    if (buffer.find(';') == std::string::npos) continue;  // Multi-line.
    auto result = engine.Execute(buffer);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->columns.empty()) {
      std::printf("%s", result->ToString().c_str());
      std::printf("(%zu row%s)\n", result->rows.size(),
                  result->rows.size() == 1 ? "" : "s");
    } else if (result->affected > 0) {
      std::printf("(%llu affected)\n",
                  static_cast<unsigned long long>(result->affected));
    } else {
      std::printf("ok\n");
    }
  }
  return 0;
}
