// Live schema evolution under load: runs a TPC-C mix against a small
// database, then submits the paper's §4.1 customer table-split migration
// mid-run. Per-second throughput and migration progress are printed so
// the zero-downtime behaviour is visible.

#include <cstdio>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "common/env.h"
#include "harness/driver.h"
#include "tpcc/loader.h"
#include "tpcc/migrations.h"
#include "tpcc/schema.h"
#include "tpcc/transactions.h"
#include "tpcc/workload.h"

using namespace bullfrog;
using namespace bullfrog::tpcc;

int main() {
  Scale scale;
  scale.warehouses = static_cast<int>(EnvInt64("BF_WAREHOUSES", 1));
  scale.customers_per_district =
      static_cast<int>(EnvInt64("BF_CUSTOMERS", 500));
  scale.items = static_cast<int>(EnvInt64("BF_ITEMS", 1000));
  scale.orders_per_district = 500;
  scale.undelivered_orders_per_district = 150;

  Database db;
  if (!CreateTpccTables(&db).ok() || !LoadTpcc(&db, scale).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("TPC-C loaded: %d warehouses, %d customers\n",
              scale.warehouses, scale.total_customers());

  Transactions txns(&db, scale);
  const int threads = static_cast<int>(EnvInt64("BF_THREADS", 4));
  std::vector<std::unique_ptr<WorkloadGenerator>> gens;
  for (int i = 0; i < threads; ++i) {
    gens.push_back(std::make_unique<WorkloadGenerator>(
        scale, 100 + static_cast<uint64_t>(i)));
  }

  OpenLoopDriver::Options dopts;
  dopts.threads = threads;
  dopts.rate_tps = EnvDouble("BF_RATE", 300);
  dopts.labels = {"NewOrder", "Payment", "Delivery", "OrderStatus",
                  "StockLevel"};
  OpenLoopDriver driver(dopts, [&](int worker) {
    WorkloadGenerator& gen = *gens[static_cast<size_t>(worker)];
    const TxnType type = gen.NextType();
    Status s = gen.Execute(&txns, type);
    // Intended NewOrder rollbacks and transition-window schema errors are
    // not client-visible failures.
    if (s.IsConstraintViolation()) s = Status::OK();
    if (s.code() == StatusCode::kSchemaMismatch) {
      s = Status::TxnConflict("front-end restart after big flip");
    }
    return std::make_pair(static_cast<int>(type), s);
  });

  driver.Start();
  const double pre_s = EnvDouble("BF_PRE_SECONDS", 2);
  const double post_s = EnvDouble("BF_POST_SECONDS", 6);
  Clock::SleepMillis(static_cast<int64_t>(pre_s * 1000));

  std::printf("[%.1fs] submitting customer split migration...\n",
              driver.ElapsedSeconds());
  MigrationController::SubmitOptions mopts;
  mopts.strategy = MigrationStrategy::kLazy;
  mopts.lazy.background_start_delay_ms = 2000;
  const double submit_s = driver.ElapsedSeconds();
  Status st = db.SubmitMigration(CustomerSplitPlan(), mopts);
  if (!st.ok()) {
    std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
    return 1;
  }
  txns.set_version(SchemaVersion::kCustomerSplit);  // Big flip.
  std::printf("[%.1fs] logical switch done; transactions now run on the "
              "new schema\n",
              driver.ElapsedSeconds());

  Stopwatch post;
  while (post.ElapsedSeconds() < post_s) {
    Clock::SleepMillis(500);
    std::printf("[%.1fs] migration progress: %.0f%%%s\n",
                driver.ElapsedSeconds(), db.controller().Progress() * 100,
                db.controller().IsComplete() ? " (complete)" : "");
  }

  auto report = driver.Stop();
  std::printf("\nper-second committed transactions:\n");
  for (size_t s = 0; s < report.per_second_commits.size(); ++s) {
    std::printf("  t=%2zus  %5llu tx/s%s\n", s,
                static_cast<unsigned long long>(report.per_second_commits[s]),
                (static_cast<double>(s) <= submit_s &&
                 submit_s < static_cast<double>(s + 1))
                    ? "   <- migration submitted"
                    : "");
  }
  std::printf("total committed=%llu retries=%llu failures=%llu\n",
              static_cast<unsigned long long>(report.committed),
              static_cast<unsigned long long>(report.retries),
              static_cast<unsigned long long>(report.failures));
  std::printf("NewOrder p50=%.2f ms p99=%.2f ms\n",
              report.latency[0]->QuantileSeconds(0.5) * 1000,
              report.latency[0]->QuantileSeconds(0.99) * 1000);
  return 0;
}
