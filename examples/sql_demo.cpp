// The paper's §2.1 flight example driven entirely through SQL — including
// the migration DDL, which is submitted as the paper writes it: a
// CREATE TABLE ... AS SELECT over the old schema, plus DROP TABLE for the
// retired inputs. Shows the predicate-pushdown laziness end to end.

#include <cstdio>

#include "common/clock.h"
#include "sql/engine.h"

using namespace bullfrog;
using bullfrog::sql::SqlEngine;

namespace {

bool Run(SqlEngine* engine, const std::string& sql, bool print = false) {
  auto result = engine->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "SQL error: %s\n  in: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    return false;
  }
  if (print) std::printf("%s", result->ToString().c_str());
  return true;
}

}  // namespace

int main() {
  Database db;
  SqlEngine engine(&db);

  // --- the original schema -------------------------------------------
  if (!Run(&engine,
           "CREATE TABLE flights (flightid CHAR(6) PRIMARY KEY, "
           "source CHAR(3), dest CHAR(3), airlineid CHAR(2), "
           "departure_time TIMESTAMP, arrival_time TIMESTAMP, "
           "capacity INT)")) {
    return 1;
  }
  if (!Run(&engine,
           "CREATE TABLE flewon (flightid CHAR(6), flightdate INT, "
           "passenger_count INT)")) {
    return 1;
  }
  Run(&engine, "CREATE INDEX flewon_flightid_idx ON flewon (flightid)");

  for (int f = 0; f < 50; ++f) {
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO flights VALUES ('AA%03d', 'JFK', 'LAX', "
                  "'AA', %d, %d, %d)",
                  100 + f, 8 * 3600, 11 * 3600, 120 + f);
    if (!Run(&engine, sql)) return 1;
    for (int d = 1; d <= 30; ++d) {
      std::snprintf(sql, sizeof(sql),
                    "INSERT INTO flewon VALUES ('AA%03d', %d, %d)", 100 + f,
                    d, (f * 31 + d * 7) % 120 + 1);
      if (!Run(&engine, sql)) return 1;
    }
  }
  std::printf("loaded 50 flights x 30 days = 1500 flewon rows\n");

  // --- the single-step migration, in the paper's own DDL ---------------
  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 500;
  Status st = engine.SubmitMigrationScript(
      "CREATE TABLE flewoninfo PRIMARY KEY (fid, flightdate) AS ("
      "  SELECT f.flightid AS fid, flightdate, passenger_count,"
      "         capacity - passenger_count AS empty_seats,"
      "         departure_time AS expected_departure_time,"
      "         CAST(NULL AS TIMESTAMP) AS actual_departure_time,"
      "         arrival_time AS expected_arrival_time,"
      "         CAST(NULL AS TIMESTAMP) AS actual_arrival_time"
      "  FROM flights f, flewon fi"
      "  WHERE f.flightid = fi.flightid);"
      "DROP TABLE flights;"
      "DROP TABLE flewon;",
      opts);
  if (!st.ok()) {
    std::fprintf(stderr, "migration: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nmigration submitted — new schema live, old rejected:\n");
  auto rejected = engine.Execute("SELECT * FROM flewon");
  std::printf("  SELECT * FROM flewon -> %s\n",
              rejected.status().ToString().c_str());

  // --- the paper's client request ---------------------------------------
  std::printf("\nSELECT * FROM flewoninfo WHERE fid = 'AA101' AND "
              "flightdate = 9;\n");
  Run(&engine,
      "SELECT fid, flightdate, passenger_count, empty_seats FROM flewoninfo "
      "WHERE fid = 'AA101' AND flightdate = 9",
      /*print=*/true);
  std::printf("tuples physically migrated so far: %llu of 1500\n",
              static_cast<unsigned long long>(
                  db.catalog().FindTable("flewoninfo")->NumLiveRows()));

  // Backwards-incompatible write (the dropped CHECK constraint).
  Run(&engine,
      "INSERT INTO flewoninfo VALUES ('AA101', 31, 0, 170, 28800, NULL, "
      "39600, NULL)");
  std::printf("\ncargo-only day recorded (passenger_count = 0) — legal in "
              "the new schema\n");

  Stopwatch sw;
  while (!db.controller().IsComplete() && sw.ElapsedSeconds() < 60) {
    Clock::SleepMillis(20);
  }
  std::printf("\nbackground migration done; final count:\n");
  Run(&engine, "SELECT COUNT(*) AS rows FROM flewoninfo", /*print=*/true);
  return db.controller().IsComplete() ? 0 : 1;
}
