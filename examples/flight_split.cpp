// The paper's §2.1 running example: a flight application evolves its
// schema in one step —
//   FLIGHTS(flightid, source, dest, airlineid, departure_time,
//           arrival_time, capacity)
//   FLEWON(flightid, flightdate, passenger_count)
// becomes
//   FLEWONINFO(fid, flightdate, passenger_count, empty_seats,
//              expected_departure_time, actual_departure_time,
//              expected_arrival_time, actual_arrival_time)
// via a FLIGHTS x FLEWON join, with a derived EMPTY_SEATS column and the
// (passenger_count > 0) constraint dropped (the backwards-incompatible
// part: cargo-only flights can now be recorded).
//
// The example demonstrates predicate pushdown across the schema change:
// a point query over the new table migrates only the matching tuples.

#include <cstdio>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "common/random.h"

using namespace bullfrog;

namespace {

constexpr int kFlights = 200;
constexpr int kDaysPerFlight = 30;

Status BuildOldSchema(Database* db) {
  BF_RETURN_NOT_OK(db->CreateTable(
      SchemaBuilder("flights")
          .AddColumn("flightid", ValueType::kString, false)
          .AddColumn("source", ValueType::kString)
          .AddColumn("dest", ValueType::kString)
          .AddColumn("airlineid", ValueType::kString)
          .AddColumn("departure_time", ValueType::kTimestamp)
          .AddColumn("arrival_time", ValueType::kTimestamp)
          .AddColumn("capacity", ValueType::kInt64)
          .SetPrimaryKey({"flightid"})
          .Build()));
  BF_RETURN_NOT_OK(db->CreateTable(
      SchemaBuilder("flewon")
          .AddColumn("flightid", ValueType::kString, false)
          .AddColumn("flightdate", ValueType::kInt64)  // Day number.
          .AddColumn("passenger_count", ValueType::kInt64)
          .Build()));
  BF_RETURN_NOT_OK(db->CreateIndex("flewon", "flewon_flightid_idx",
                                   {"flightid"}, /*unique=*/false));
  Rng rng(7);
  std::vector<Tuple> flights, flewon;
  for (int f = 0; f < kFlights; ++f) {
    const std::string id = "AA" + std::to_string(100 + f);
    flights.push_back(Tuple{Value::Str(id), Value::Str("JFK"),
                            Value::Str("LAX"), Value::Str("AA"),
                            Value::Timestamp(8 * 3600),
                            Value::Timestamp(11 * 3600),
                            Value::Int(120 + rng.UniformRange(0, 80))});
    for (int d = 1; d <= kDaysPerFlight; ++d) {
      flewon.push_back(Tuple{Value::Str(id), Value::Int(d),
                             Value::Int(rng.UniformRange(1, 120))});
    }
  }
  BF_RETURN_NOT_OK(db->BulkInsert("flights", flights));
  BF_RETURN_NOT_OK(db->BulkInsert("flewon", flewon));
  return Status::OK();
}

MigrationPlan FlewonInfoPlan() {
  MigrationPlan plan;
  plan.name = "flewoninfo";
  plan.new_tables = {SchemaBuilder("flewoninfo")
                         .AddColumn("fid", ValueType::kString, false)
                         .AddColumn("flightdate", ValueType::kInt64, false)
                         .AddColumn("passenger_count", ValueType::kInt64)
                         .AddColumn("empty_seats", ValueType::kInt64)
                         .AddColumn("expected_departure_time",
                                    ValueType::kTimestamp)
                         .AddColumn("actual_departure_time",
                                    ValueType::kTimestamp)
                         .AddColumn("expected_arrival_time",
                                    ValueType::kTimestamp)
                         .AddColumn("actual_arrival_time",
                                    ValueType::kTimestamp)
                         .SetPrimaryKey({"fid", "flightdate"})
                         .Build()};
  plan.new_indexes = {IndexSpec{"flewoninfo", "flewoninfo_fid", {"fid"},
                                false, false}};
  plan.retire_tables = {"flights", "flewon"};

  // FLIGHTS (PK side) x FLEWON (FK side) joined on flightid: a FK-PK
  // join, tracked per §3.6 option 2 — only the FKIT (flewon) carries a
  // bitmap; flights tuples are read as needed.
  MigrationStatement stmt;
  stmt.name = "join_flights_flewon";
  stmt.category = MigrationCategory::kOneToMany;
  stmt.input_tables = {"flewon", "flights"};
  stmt.output_tables = {"flewoninfo"};
  stmt.left_join_column = "flightid";
  stmt.right_join_column = "flightid";
  stmt.join_policy = JoinPolicy::kTrackForeignSideOnly;
  stmt.provenance.AddPassThrough("fid", "flewon", "flightid");
  stmt.provenance.AddPassThrough("fid", "flights", "flightid");
  stmt.provenance.AddPassThrough("flightdate", "flewon", "flightdate");
  stmt.provenance.AddPassThrough("passenger_count", "flewon",
                                 "passenger_count");
  stmt.provenance.AddDerived("empty_seats");  // capacity - passenger_count.
  stmt.provenance.AddPassThrough("expected_departure_time", "flights",
                                 "departure_time");
  stmt.provenance.AddDerived("actual_departure_time");
  stmt.provenance.AddPassThrough("expected_arrival_time", "flights",
                                 "arrival_time");
  stmt.provenance.AddDerived("actual_arrival_time");
  stmt.join_transform =
      [](const Tuple& fi, const Tuple& f) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{
        0, Tuple{fi[0], fi[1], fi[2],
                 Value::Int(f[6].AsInt() - fi[2].AsInt()),  // empty_seats
                 f[4], Value::Null(), f[5], Value::Null()}}};
  };
  plan.statements.push_back(std::move(stmt));
  return plan;
}

}  // namespace

int main() {
  Database db;
  if (!BuildOldSchema(&db).ok()) return 1;
  std::printf("old schema loaded: %d flights, %d flewon rows\n", kFlights,
              kFlights * kDaysPerFlight);

  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 300;
  Status st = db.SubmitMigration(FlewonInfoPlan(), opts);
  if (!st.ok()) {
    std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("migration live; flewoninfo active, old tables retired\n");

  // The paper's client request:
  //   SELECT * FROM FLEWONINFO WHERE FID = 'AA101'
  //   AND <a date filter>;
  // The FID predicate converts to flightid filters on both old tables;
  // only AA101's tuples migrate.
  auto session = db.BeginSession({"flewoninfo"});
  auto rows = db.Select(&session, "flewoninfo",
                        And(Eq(Col("fid"), LitStr("AA101")),
                            Eq(Col("flightdate"), LitInt(9))));
  if (!rows.ok()) return 1;
  (void)db.Commit(&session);
  const auto migrated =
      db.catalog().FindTable("flewoninfo")->NumLiveRows();
  std::printf(
      "query fid='AA101' AND flightdate=9 -> %zu row(s); "
      "only %llu of %d tuples migrated so far (predicate-driven laziness)\n",
      rows->size(), static_cast<unsigned long long>(migrated),
      kFlights * kDaysPerFlight);
  if (!rows->empty()) {
    std::printf("  row: %s\n", rows->front().second.ToString().c_str());
  }

  // A backwards-incompatible insert: zero passengers (cargo run) — the
  // old CHECK (passenger_count > 0) no longer exists on the new schema.
  auto s2 = db.BeginSession({"flewoninfo"});
  st = db.Insert(&s2, "flewoninfo",
                 Tuple{Value::Str("AA101"), Value::Int(31), Value::Int(0),
                       Value::Int(180), Value::Timestamp(8 * 3600),
                       Value::Null(), Value::Timestamp(11 * 3600),
                       Value::Null()});
  std::printf("cargo-only insert (passenger_count = 0): %s\n",
              st.ToString().c_str());
  (void)db.Commit(&s2);

  Stopwatch wait;
  while (!db.controller().IsComplete() && wait.ElapsedSeconds() < 60) {
    Clock::SleepMillis(20);
  }
  std::printf("background migration finished: %llu rows in flewoninfo\n",
              static_cast<unsigned long long>(
                  db.catalog().FindTable("flewoninfo")->NumLiveRows()));
  return db.controller().IsComplete() ? 0 : 1;
}
