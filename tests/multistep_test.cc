#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "migration/multistep.h"
#include "migration/upsert.h"
#include "query/scan.h"
#include "txn/txn_manager.h"

namespace bullfrog {
namespace {

TableSchema SrcSchema() {
  return SchemaBuilder("src")
      .AddColumn("id", ValueType::kInt64, /*nullable=*/false)
      .AddColumn("grp", ValueType::kInt64)
      .AddColumn("val", ValueType::kInt64)
      .SetPrimaryKey({"id"})
      .Build();
}

class UpsertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(SrcSchema());
  }
  Tuple Row(int64_t id, int64_t g, int64_t v) {
    return Tuple{Value::Int(id), Value::Int(g), Value::Int(v)};
  }
  TransactionManager txns_;
  std::unique_ptr<Table> table_;
};

TEST_F(UpsertTest, InsertsWhenAbsent) {
  auto txn = txns_.Begin();
  ASSERT_TRUE(UpsertByPk(&txns_, txn.get(), table_.get(), Row(1, 0, 5)).ok());
  ASSERT_TRUE(txns_.Commit(txn.get()).ok());
  EXPECT_EQ(table_->NumLiveRows(), 1u);
}

TEST_F(UpsertTest, UpdatesWhenPresent) {
  auto setup = txns_.Begin();
  ASSERT_TRUE(UpsertByPk(&txns_, setup.get(), table_.get(), Row(1, 0, 5))
                  .ok());
  ASSERT_TRUE(txns_.Commit(setup.get()).ok());
  auto txn = txns_.Begin();
  ASSERT_TRUE(UpsertByPk(&txns_, txn.get(), table_.get(), Row(1, 0, 9)).ok());
  ASSERT_TRUE(txns_.Commit(txn.get()).ok());
  EXPECT_EQ(table_->NumLiveRows(), 1u);
  Tuple row;
  ASSERT_TRUE(table_->Read(0, &row).ok());
  EXPECT_EQ(row[2].AsInt(), 9);
}

TEST_F(UpsertTest, DeleteByPkRemovesMatching) {
  auto setup = txns_.Begin();
  ASSERT_TRUE(UpsertByPk(&txns_, setup.get(), table_.get(), Row(1, 0, 5))
                  .ok());
  ASSERT_TRUE(txns_.Commit(setup.get()).ok());
  auto txn = txns_.Begin();
  ASSERT_TRUE(DeleteByPk(&txns_, txn.get(), table_.get(), Row(1, 0, 0)).ok());
  // Deleting a missing key is a no-op.
  ASSERT_TRUE(DeleteByPk(&txns_, txn.get(), table_.get(), Row(7, 0, 0)).ok());
  ASSERT_TRUE(txns_.Commit(txn.get()).ok());
  EXPECT_EQ(table_->NumLiveRows(), 0u);
}

TEST_F(UpsertTest, RequiresPrimaryKey) {
  Table no_pk(SchemaBuilder("nopk").AddColumn("x", ValueType::kInt64).Build());
  auto txn = txns_.Begin();
  EXPECT_EQ(UpsertByPk(&txns_, txn.get(), &no_pk, Tuple{Value::Int(1)})
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(txns_.Abort(txn.get()).ok());
}

class MultiStepTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 200;
  static constexpr int kGroups = 10;

  void SetUp() override {
    auto src = catalog_.CreateTable(SrcSchema());
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(
        (*src)->CreateIndex("src_by_grp", {"grp"}, false, IndexKind::kHash)
            .ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*src)
                      ->Insert(Tuple{Value::Int(i), Value::Int(i % kGroups),
                                     Value::Int(1)})
                      .ok());
    }
    ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("sums")
                                         .AddColumn("grp", ValueType::kInt64,
                                                    false)
                                         .AddColumn("total",
                                                    ValueType::kInt64)
                                         .SetPrimaryKey({"grp"})
                                         .Build())
                    .ok());
    plan_.name = "sum";
    MigrationStatement stmt;
    stmt.name = "sum_src";
    stmt.category = MigrationCategory::kManyToOne;
    stmt.input_tables = {"src"};
    stmt.output_tables = {"sums"};
    stmt.group_key_columns = {"grp"};
    stmt.group_transform =
        [](const Tuple& key,
           const std::vector<Tuple>& rows) -> Result<std::vector<TargetRow>> {
      if (rows.empty()) return std::vector<TargetRow>{};
      int64_t total = 0;
      for (const Tuple& r : rows) total += r[2].AsInt();
      return std::vector<TargetRow>{
          TargetRow{0, Tuple{key[0], Value::Int(total)}}};
    };
    plan_.statements.push_back(std::move(stmt));
    plan_.retire_tables = {"src"};
  }

  Catalog catalog_;
  TransactionManager txns_;
  MigrationPlan plan_;
};

TEST_F(MultiStepTest, AggregateCopyAndCutover) {
  std::atomic<bool> cut{false};
  MultiStepCopier::Options opts;
  opts.threads = 2;
  opts.batch = 32;
  opts.pause_us = 0;
  MultiStepCopier copier(&catalog_, &txns_, &plan_, opts, [&]() -> Status {
    cut.store(true);
    return Status::OK();
  });
  copier.Start();
  Stopwatch sw;
  while (!copier.SwitchedOver() && sw.ElapsedMillis() < 10000) {
    Clock::SleepMillis(5);
  }
  ASSERT_TRUE(copier.SwitchedOver());
  EXPECT_TRUE(cut.load());
  Table* sums = catalog_.FindTable("sums");
  EXPECT_EQ(sums->NumLiveRows(), static_cast<uint64_t>(kGroups));
  sums->Scan([&](RowId, const Tuple& row) {
    EXPECT_EQ(row[1].AsInt(), kRows / kGroups);
    return true;
  });
  EXPECT_DOUBLE_EQ(copier.Progress(), 1.0);
}

TEST_F(MultiStepTest, AggregatePropagationRecomputesGroup) {
  MultiStepCopier::Options opts;
  opts.threads = 1;
  opts.batch = 1024;
  opts.pause_us = 0;
  std::atomic<bool> allow_cut{false};
  MultiStepCopier copier(&catalog_, &txns_, &plan_, opts, [&]() -> Status {
    if (!allow_cut.load()) return Status::Busy("not yet");
    return Status::OK();
  });
  copier.Start();
  // Wait until group 3 is copied (progress ~complete but cutover held).
  Stopwatch sw;
  while (copier.Progress() < 1.0 && sw.ElapsedMillis() < 5000) {
    Clock::SleepMillis(2);
  }
  // A dual write: add a row to group 3 (old schema still active).
  Table* src = catalog_.FindTable("src");
  auto txn = txns_.Begin();
  auto out = txns_.Insert(txn.get(), src,
                          Tuple{Value::Int(kRows + 1), Value::Int(3),
                                Value::Int(10)});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(copier
                  .Propagate(txn.get(), "src", out->rid,
                             Tuple{Value::Int(kRows + 1), Value::Int(3),
                                   Value::Int(10)},
                             /*deleted=*/false)
                  .ok());
  ASSERT_TRUE(txns_.Commit(txn.get()).ok());
  // The shadow aggregate reflects the write immediately.
  Table* sums = catalog_.FindTable("sums");
  auto rows = CollectWhere(*sums, Eq(Col("grp"), LitInt(3)));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front().second[1].AsInt(), kRows / kGroups + 10);
  allow_cut.store(true);
  while (!copier.SwitchedOver() && sw.ElapsedMillis() < 10000) {
    Clock::SleepMillis(5);
  }
  EXPECT_TRUE(copier.SwitchedOver());
}

}  // namespace
}  // namespace bullfrog
