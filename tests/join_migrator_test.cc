#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "migration/statement_migrator.h"
#include "query/scan.h"
#include "txn/txn_manager.h"

namespace bullfrog {
namespace {

/// Fixture: left(id, k, x) and right(k, y) joined on k into
/// joined(id, k, x, rk_y). Key k ranges over kKeys values; each key has
/// kLeftPerKey left rows and kRightPerKey right rows (true many-to-many).
class JoinMigratorTest : public ::testing::TestWithParam<JoinPolicy> {
 protected:
  static constexpr int kKeys = 12;
  static constexpr int kLeftPerKey = 8;
  static constexpr int kRightPerKey = 3;

  void SetUp() override {
    auto left = catalog_.CreateTable(SchemaBuilder("left")
                                         .AddColumn("id", ValueType::kInt64,
                                                    false)
                                         .AddColumn("k", ValueType::kInt64)
                                         .AddColumn("x", ValueType::kInt64)
                                         .SetPrimaryKey({"id"})
                                         .Build());
    ASSERT_TRUE(left.ok());
    ASSERT_TRUE(
        (*left)->CreateIndex("left_by_k", {"k"}, false, IndexKind::kHash)
            .ok());
    auto right = catalog_.CreateTable(SchemaBuilder("right")
                                          .AddColumn("rid", ValueType::kInt64,
                                                     false)
                                          .AddColumn("k", ValueType::kInt64)
                                          .AddColumn("y", ValueType::kInt64)
                                          .SetPrimaryKey({"rid"})
                                          .Build());
    ASSERT_TRUE(right.ok());
    ASSERT_TRUE(
        (*right)->CreateIndex("right_by_k", {"k"}, false, IndexKind::kHash)
            .ok());
    int id = 0;
    for (int k = 0; k < kKeys; ++k) {
      for (int i = 0; i < kLeftPerKey; ++i) {
        ASSERT_TRUE((*left)
                        ->Insert(Tuple{Value::Int(id++), Value::Int(k),
                                       Value::Int(k * 100 + i)})
                        .ok());
      }
    }
    int rid = 0;
    for (int k = 0; k < kKeys; ++k) {
      for (int i = 0; i < kRightPerKey; ++i) {
        ASSERT_TRUE((*right)
                        ->Insert(Tuple{Value::Int(rid++), Value::Int(k),
                                       Value::Int(k * 10 + i)})
                        .ok());
      }
    }
    ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("joined")
                                         .AddColumn("id", ValueType::kInt64,
                                                    false)
                                         .AddColumn("rid", ValueType::kInt64,
                                                    false)
                                         .AddColumn("k", ValueType::kInt64)
                                         .AddColumn("x", ValueType::kInt64)
                                         .AddColumn("y", ValueType::kInt64)
                                         .SetPrimaryKey({"id", "rid"})
                                         .Build())
                    .ok());
  }

  MigrationStatement JoinStatement(JoinPolicy policy) {
    MigrationStatement stmt;
    stmt.name = "join_lr";
    stmt.category = MigrationCategory::kManyToMany;
    stmt.input_tables = {"left", "right"};
    stmt.output_tables = {"joined"};
    stmt.left_join_column = "k";
    stmt.right_join_column = "k";
    stmt.join_policy = policy;
    stmt.provenance.AddPassThrough("id", "left", "id");
    stmt.provenance.AddPassThrough("x", "left", "x");
    stmt.provenance.AddPassThrough("k", "left", "k");
    stmt.provenance.AddPassThrough("k", "right", "k");
    stmt.provenance.AddPassThrough("rid", "right", "rid");
    stmt.provenance.AddPassThrough("y", "right", "y");
    stmt.join_transform =
        [](const Tuple& l, const Tuple& r) -> Result<std::vector<TargetRow>> {
      return std::vector<TargetRow>{
          TargetRow{0, Tuple{l[0], r[0], l[1], l[2], r[2]}}};
    };
    return stmt;
  }

  Result<std::unique_ptr<StatementMigrator>> Make(JoinPolicy policy,
                                                  LazyConfig config = {}) {
    return MakeStatementMigrator(&catalog_, &txns_, JoinStatement(policy),
                                 config);
  }

  uint64_t CountJoined() {
    return catalog_.FindTable("joined")->NumLiveRows();
  }

  static constexpr uint64_t kExpectedTotal =
      static_cast<uint64_t>(kKeys) * kLeftPerKey * kRightPerKey;

  void DrainBackground(StatementMigrator* m) {
    bool done = false;
    int safety = 100000;
    while (!done && --safety > 0) {
      ASSERT_TRUE(m->MigrateBackgroundChunk(16, &done).ok());
    }
    ASSERT_TRUE(done);
  }

  Catalog catalog_;
  TransactionManager txns_;
};

TEST_P(JoinMigratorTest, PredicateOnLeftSourcedColumnMigratesItsKeyClass) {
  auto m = Make(GetParam());
  ASSERT_TRUE(m.ok());
  // A point query on id=0 (left pk). For the hash policy, the whole
  // join-key class of that row moves; bitmap policies move at least the
  // covering granule's joined pairs. In every case the query's own pairs
  // are present.
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(0))).ok());
  Table* joined = catalog_.FindTable("joined");
  auto rows = CollectWhere(*joined, Eq(Col("id"), LitInt(0)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kRightPerKey));
}

TEST_P(JoinMigratorTest, JoinKeyPredicateMigratesFullClass) {
  auto m = Make(GetParam());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("k"), LitInt(5))).ok());
  Table* joined = catalog_.FindTable("joined");
  auto rows = CollectWhere(*joined, Eq(Col("k"), LitInt(5)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(),
            static_cast<size_t>(kLeftPerKey * kRightPerKey));
}

TEST_P(JoinMigratorTest, BackgroundCompletesWithFullJoinResult) {
  auto m = Make(GetParam());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("k"), LitInt(0))).ok());
  DrainBackground(m->get());
  EXPECT_TRUE((*m)->IsComplete());
  EXPECT_EQ(CountJoined(), kExpectedTotal);
}

TEST_P(JoinMigratorTest, ConcurrentRequestsProduceExactJoin) {
  auto m = Make(GetParam());
  ASSERT_TRUE(m.ok());
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int w = 0; w < 6; ++w) {
    threads.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        Status s = (*m)->MigrateForPredicate(Eq(Col("k"), LitInt(k)));
        if (!s.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(CountJoined(), kExpectedTotal);
  // Verify the actual pair set, not just the count.
  Table* joined = catalog_.FindTable("joined");
  std::set<std::pair<int64_t, int64_t>> pairs;
  joined->Scan([&](RowId, const Tuple& row) {
    pairs.emplace(row[0].AsInt(), row[1].AsInt());
    return true;
  });
  EXPECT_EQ(pairs.size(), kExpectedTotal);
}

TEST_P(JoinMigratorTest, RightSourcedPredicateNarrowsThroughJoinKey) {
  auto m = Make(GetParam());
  ASSERT_TRUE(m.ok());
  // y is right-sourced; rows with y = 70 belong to key 7 only. Whatever
  // the tracking policy, the pairs the request needs (every left row of
  // key 7 joined with the y=70 right row) must be present afterwards.
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("y"), LitInt(70))).ok());
  Table* joined = catalog_.FindTable("joined");
  auto rows = CollectWhere(*joined, Eq(Col("y"), LitInt(70)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kLeftPerKey));
  // The hash policy migrates exactly the key-7 class and nothing else.
  if (GetParam() == JoinPolicy::kHashJoinKey) {
    auto cls = CollectWhere(*joined, Eq(Col("k"), LitInt(7)));
    ASSERT_TRUE(cls.ok());
    EXPECT_EQ(cls->size(), static_cast<size_t>(kLeftPerKey * kRightPerKey));
    auto others = CollectWhere(*joined, Ne(Col("k"), LitInt(7)));
    ASSERT_TRUE(others.ok());
    EXPECT_TRUE(others->empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, JoinMigratorTest,
    ::testing::Values(JoinPolicy::kHashJoinKey,
                      JoinPolicy::kTrackForeignSideOnly,
                      JoinPolicy::kMigrateAllSiblings),
    [](const auto& info) {
      switch (info.param) {
        case JoinPolicy::kHashJoinKey:
          return "HashJoinKey";
        case JoinPolicy::kTrackForeignSideOnly:
          return "TrackForeignSide";
        case JoinPolicy::kMigrateAllSiblings:
          return "MigrateAllSiblings";
      }
      return "Unknown";
    });

TEST(JoinMigratorValidationTest, RequiresTwoInputs) {
  Catalog catalog;
  TransactionManager txns;
  MigrationStatement stmt;
  stmt.name = "bad";
  stmt.input_tables = {"only_one"};
  stmt.output_tables = {"out"};
  stmt.join_transform = [](const Tuple&,
                           const Tuple&) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{};
  };
  EXPECT_FALSE(MakeStatementMigrator(&catalog, &txns, stmt, {}).ok());
}

TEST(JoinMigratorValidationTest, MigrateJoinKeyRequiresHashPolicy) {
  Catalog catalog;
  TransactionManager txns;
  // Minimal two tables.
  ASSERT_TRUE(catalog.CreateTable(SchemaBuilder("l")
                                      .AddColumn("k", ValueType::kInt64)
                                      .Build())
                  .ok());
  ASSERT_TRUE(catalog.CreateTable(SchemaBuilder("r")
                                      .AddColumn("k", ValueType::kInt64)
                                      .Build())
                  .ok());
  ASSERT_TRUE(catalog.CreateTable(SchemaBuilder("o")
                                      .AddColumn("k", ValueType::kInt64)
                                      .Build())
                  .ok());
  MigrationStatement stmt;
  stmt.name = "j";
  stmt.input_tables = {"l", "r"};
  stmt.output_tables = {"o"};
  stmt.left_join_column = "k";
  stmt.right_join_column = "k";
  stmt.join_policy = JoinPolicy::kTrackForeignSideOnly;
  stmt.join_transform = [](const Tuple& l,
                           const Tuple&) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{0, l}};
  };
  auto m = MakeStatementMigrator(&catalog, &txns, stmt, {});
  ASSERT_TRUE(m.ok());
  auto* join = static_cast<JoinMigrator*>(m->get());
  EXPECT_EQ(join->MigrateJoinKey(Value::Int(1)).code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace bullfrog
