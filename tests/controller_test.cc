#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "migration/controller.h"
#include "query/scan.h"
#include "txn/txn_manager.h"

namespace bullfrog {

/// White-box access for tests: inspects the controller's gate map.
class MigrationControllerTestPeer {
 public:
  static size_t NumGates(const MigrationController& c) {
    std::lock_guard lock(c.mu_);
    return c.gates_.size();
  }
};

namespace {

/// Fixture: src(id, grp, val) split into out_a(id, val) / out_b(id, grp).
class ControllerTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 300;
  static constexpr int kGroups = 10;

  void SetUp() override {
    controller_ = std::make_unique<MigrationController>(&catalog_, &txns_);
    auto src = catalog_.CreateTable(SchemaBuilder("src")
                                        .AddColumn("id", ValueType::kInt64,
                                                   false)
                                        .AddColumn("grp", ValueType::kInt64)
                                        .AddColumn("val", ValueType::kInt64)
                                        .SetPrimaryKey({"id"})
                                        .Build());
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(
        (*src)->CreateIndex("src_by_grp", {"grp"}, false, IndexKind::kHash)
            .ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*src)
                      ->Insert(Tuple{Value::Int(i), Value::Int(i % kGroups),
                                     Value::Int(i)})
                      .ok());
    }
  }

  MigrationPlan SplitPlan() {
    MigrationPlan plan;
    plan.name = "split";
    plan.new_tables = {SchemaBuilder("out_a")
                           .AddColumn("id", ValueType::kInt64, false)
                           .AddColumn("val", ValueType::kInt64)
                           .SetPrimaryKey({"id"})
                           .Build(),
                       SchemaBuilder("out_b")
                           .AddColumn("id", ValueType::kInt64, false)
                           .AddColumn("grp", ValueType::kInt64)
                           .SetPrimaryKey({"id"})
                           .Build()};
    plan.retire_tables = {"src"};
    MigrationStatement stmt;
    stmt.name = "split_src";
    stmt.category = MigrationCategory::kOneToMany;
    stmt.input_tables = {"src"};
    stmt.output_tables = {"out_a", "out_b"};
    stmt.provenance.AddPassThrough("id", "src", "id");
    stmt.provenance.AddPassThrough("grp", "src", "grp");
    stmt.provenance.AddPassThrough("val", "src", "val");
    stmt.row_transform =
        [](const Tuple& in) -> Result<std::vector<TargetRow>> {
      return std::vector<TargetRow>{TargetRow{0, Tuple{in[0], in[2]}},
                                    TargetRow{1, Tuple{in[0], in[1]}}};
    };
    plan.statements.push_back(std::move(stmt));
    return plan;
  }

  MigrationController::SubmitOptions LazyOpts(bool background = true) {
    MigrationController::SubmitOptions opts;
    opts.strategy = MigrationStrategy::kLazy;
    opts.enable_background = background;
    opts.lazy.background_start_delay_ms = 10;
    opts.lazy.background_pause_us = 0;
    return opts;
  }

  void WaitComplete(int timeout_ms = 10000) {
    Stopwatch sw;
    while (!controller_->IsComplete() && sw.ElapsedMillis() < timeout_ms) {
      Clock::SleepMillis(5);
    }
    ASSERT_TRUE(controller_->IsComplete());
  }

  uint64_t CountRows(const std::string& name) {
    Table* t = catalog_.FindTable(name);
    return t == nullptr ? 0 : t->NumLiveRows();
  }

  Catalog catalog_;
  TransactionManager txns_;
  std::unique_ptr<MigrationController> controller_;
};

TEST_F(ControllerTest, LazySubmitIsLogicalSwitchOnly) {
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(false)).ok());
  // The switch is immediate: new tables active, old rejected (§2.1 big
  // flip), and no data has physically moved yet.
  EXPECT_TRUE(catalog_.RequireActive("out_a").ok());
  EXPECT_EQ(catalog_.RequireActive("src").status().code(),
            StatusCode::kSchemaMismatch);
  EXPECT_TRUE(catalog_.RequireReadable("src").ok());
  EXPECT_EQ(CountRows("out_a"), 0u);
  EXPECT_TRUE(controller_->HasActiveMigration());
  EXPECT_FALSE(controller_->IsComplete());
}

TEST_F(ControllerTest, PrepareReadMigratesRelevantTuples) {
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(false)).ok());
  ASSERT_TRUE(
      controller_->PrepareRead("out_a", Eq(Col("id"), LitInt(7))).ok());
  EXPECT_EQ(CountRows("out_a"), 1u);
  Table* out_a = catalog_.FindTable("out_a");
  auto rows = CollectWhere(*out_a, Eq(Col("id"), LitInt(7)));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front().second[1].AsInt(), 7);
}

TEST_F(ControllerTest, BackgroundDrivesMigrationToCompletion) {
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(true)).ok());
  WaitComplete();
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
  EXPECT_EQ(CountRows("out_b"), static_cast<uint64_t>(kRows));
  // §2.2: once complete, the old schema is deleted.
  EXPECT_EQ(catalog_.GetState("src"), TableState::kDropped);
  auto timeline = controller_->timeline();
  EXPECT_GE(timeline.background_start_s, 0.0);
  EXPECT_GE(timeline.complete_s, 0.0);
  EXPECT_DOUBLE_EQ(controller_->Progress(), 1.0);
}

TEST_F(ControllerTest, SecondSubmitOverSameTablesQueues) {
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(false)).ok());
  // A lazy submit over overlapping tables no longer bounces with kBusy:
  // it joins the migration train behind the in-flight entry and starts
  // automatically once that entry completes.
  MigrationPlan another = SplitPlan();
  another.name = "again";
  const Status st = controller_->Submit(std::move(another), LazyOpts(false));
  EXPECT_EQ(st.code(), StatusCode::kQueued) << st.ToString();
  EXPECT_EQ(controller_->QueuedMigrations(), 1u);
  EXPECT_EQ(controller_->ActiveMigrations(), 1u);
  // Non-lazy strategies cannot ride the train — the eager copy loop
  // needs its inputs to exist at submit time.
  MigrationPlan eager = SplitPlan();
  eager.name = "eager-overlap";
  auto opts = LazyOpts(false);
  opts.strategy = MigrationStrategy::kEager;
  EXPECT_EQ(controller_->Submit(std::move(eager), opts).code(),
            StatusCode::kBusy);
  // Re-submitting a queued name is a duplicate, not a second queue slot.
  MigrationPlan dup = SplitPlan();
  dup.name = "again";
  EXPECT_EQ(controller_->Submit(std::move(dup), LazyOpts(false)).code(),
            StatusCode::kBusy);
}

TEST_F(ControllerTest, PrepareInsertMigratesConflictingKeys) {
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(false)).ok());
  // Inserting id=9 into out_a: the old row with id 9 must be migrated
  // first so the PK constraint can be checked over the new schema (§2.1).
  ASSERT_TRUE(controller_
                  ->PrepareInsert("out_a", Tuple{Value::Int(9), Value::Int(0)})
                  .ok());
  Table* out_a = catalog_.FindTable("out_a");
  auto rows = CollectWhere(*out_a, Eq(Col("id"), LitInt(9)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  // Now the insert would correctly conflict.
  EXPECT_TRUE(out_a->Insert(Tuple{Value::Int(9), Value::Int(1)})
                  .status()
                  .IsAlreadyExists());
}

TEST_F(ControllerTest, EagerSubmitBlocksUntilFullyMigrated) {
  auto opts = LazyOpts();
  opts.strategy = MigrationStrategy::kEager;
  ASSERT_TRUE(controller_->Submit(SplitPlan(), opts).ok());
  // Eager returns only when everything has moved.
  EXPECT_TRUE(controller_->IsComplete());
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
  EXPECT_EQ(catalog_.GetState("src"), TableState::kDropped);
}

TEST_F(ControllerTest, EagerGatesReleasedAfterCompletion) {
  auto opts = LazyOpts();
  opts.strategy = MigrationStrategy::kEager;
  ASSERT_TRUE(controller_->Submit(SplitPlan(), opts).ok());
  EXPECT_TRUE(controller_->IsComplete());
  // The per-table gates created for the eager copy are dropped once the
  // copy is over: later GuardTables calls must not keep taking shared
  // locks on dead gates forever.
  EXPECT_EQ(MigrationControllerTestPeer::NumGates(*controller_), 0u);
  auto guard = controller_->GuardTables({"out_a", "out_b"});
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
}

TEST_F(ControllerTest, EagerGatesQueueConcurrentRequests) {
  std::atomic<bool> migration_done{false};
  std::atomic<bool> request_finished{false};
  std::thread migrator([&] {
    auto opts = LazyOpts();
    opts.strategy = MigrationStrategy::kEager;
    ASSERT_TRUE(controller_->Submit(SplitPlan(), opts).ok());
    migration_done.store(true);
  });
  // A request that touches out_a must wait for the eager copy.
  Clock::SleepMillis(1);  // Let Submit install the gates.
  std::thread client([&] {
    for (;;) {
      auto guard = controller_->GuardTables({"out_a"});
      if (controller_->HasActiveMigration()) {
        // Gate acquired: the eager copy must have finished (the gates are
        // released only after completion).
        EXPECT_TRUE(controller_->IsComplete());
        request_finished.store(true);
        return;
      }
      // Submit had not created the gate yet; retry.
      Clock::SleepMillis(1);
    }
  });
  migrator.join();
  client.join();
  EXPECT_TRUE(request_finished.load());
}

TEST_F(ControllerTest, MultiStepKeepsOldSchemaActiveUntilCutover) {
  auto opts = LazyOpts();
  opts.strategy = MigrationStrategy::kMultiStep;
  opts.multistep.batch = 32;
  opts.multistep.pause_us = 0;
  ASSERT_TRUE(controller_->Submit(SplitPlan(), opts).ok());
  // During the copy the old schema still serves requests (unless the
  // copier already won the race on this tiny data set).
  if (!controller_->IsComplete()) {
    EXPECT_TRUE(!controller_->UsesNewSchema() || controller_->IsComplete());
  }
  EXPECT_TRUE(catalog_.RequireActive("src").ok() ||
              controller_->IsComplete());
  WaitComplete();
  EXPECT_TRUE(controller_->UsesNewSchema());
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
  EXPECT_EQ(catalog_.GetState("src"), TableState::kDropped);
}

TEST_F(ControllerTest, MultiStepDualWritePropagation) {
  auto opts = LazyOpts();
  opts.strategy = MigrationStrategy::kMultiStep;
  opts.multistep.batch = 16;
  opts.multistep.pause_us = 2000;  // Pace the copier so the write lands
                                   // mid-copy.
  ASSERT_TRUE(controller_->Submit(SplitPlan(), opts).ok());
  Table* src = catalog_.FindTable("src");
  // Write through the dual-write path while the copier runs: update row 3.
  // The propagation can collide with the copier's in-flight batch txn on
  // the output row (the watermark advances before the batch commits) and
  // die under wait-die; retry like a real client until it lands or the
  // copier finishes.
  int64_t expected = 3;  // Original value if the copier already finished.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    auto guard = controller_->MultiStepWriteGuard();
    if (!controller_->MultiStepActive()) break;
    auto txn = txns_.Begin();
    Tuple updated{Value::Int(3), Value::Int(3 % kGroups), Value::Int(777)};
    Status s = txns_.Update(txn.get(), src, 3, updated);
    if (s.ok()) {
      s = controller_->PropagateOldWrite(txn.get(), "src", 3, updated,
                                         /*deleted=*/false);
    }
    if (s.ok()) s = txns_.Commit(txn.get());
    if (s.ok()) {
      expected = 777;
      break;
    }
    ASSERT_TRUE(s.IsRetryable()) << s.ToString();
    (void)txns_.Abort(txn.get());
    Clock::SleepMillis(1);
  }
  WaitComplete();
  // Whether the copier or the propagation got there, the final new-schema
  // value must reflect the write (when it happened mid-copy).
  Table* out_a = catalog_.FindTable("out_a");
  auto rows = CollectWhere(*out_a, Eq(Col("id"), LitInt(3)));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front().second[1].AsInt(), expected);
}

TEST_F(ControllerTest, ForeignKeyCheckedAgainstActiveParent) {
  // child.fk -> src.id while src is active.
  auto child = catalog_.CreateTable(SchemaBuilder("child")
                                        .AddColumn("cid", ValueType::kInt64,
                                                   false)
                                        .AddColumn("fk", ValueType::kInt64)
                                        .SetPrimaryKey({"cid"})
                                        .AddForeignKey("fk_src", {"fk"},
                                                       "src", {"id"})
                                        .Build());
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE(controller_
                  ->CheckForeignKeys("child",
                                     Tuple{Value::Int(1), Value::Int(5)})
                  .ok());
  EXPECT_TRUE(controller_
                  ->CheckForeignKeys(
                      "child", Tuple{Value::Int(2), Value::Int(kRows + 5)})
                  .IsConstraintViolation());
  // NULL FK is vacuously fine.
  EXPECT_TRUE(controller_
                  ->CheckForeignKeys("child",
                                     Tuple{Value::Int(3), Value::Null()})
                  .ok());
}

TEST_F(ControllerTest, ForeignKeyIntoMigratingParentForcesMigration) {
  // child.fk -> out_b.id: the parent is a migration output, so the check
  // must migrate the parent row first (§4.5).
  auto child = catalog_.CreateTable(SchemaBuilder("child")
                                        .AddColumn("cid", ValueType::kInt64,
                                                   false)
                                        .AddColumn("fk", ValueType::kInt64)
                                        .SetPrimaryKey({"cid"})
                                        .AddForeignKey("fk_out", {"fk"},
                                                       "out_b", {"id"})
                                        .Build());
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(false)).ok());
  EXPECT_EQ(CountRows("out_b"), 0u);
  EXPECT_TRUE(controller_
                  ->CheckForeignKeys("child",
                                     Tuple{Value::Int(1), Value::Int(42)})
                  .ok());
  EXPECT_GE(CountRows("out_b"), 1u);
}

TEST_F(ControllerTest, RecoverFromRedoLogRestoresTrackerState) {
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(false)).ok());
  // Migrate a couple of units, then "crash": rebuild trackers from the
  // redo log (§3.5 extension).
  ASSERT_TRUE(
      controller_->PrepareRead("out_a", Eq(Col("id"), LitInt(1))).ok());
  ASSERT_TRUE(
      controller_->PrepareRead("out_a", Eq(Col("id"), LitInt(2))).ok());
  EXPECT_EQ(CountRows("out_a"), 2u);
  ASSERT_TRUE(controller_->RecoverFromRedoLog().ok());
  // The recovered tracker remembers both units: preparing the same reads
  // must not duplicate-migrate (the PK would reject it).
  ASSERT_TRUE(
      controller_->PrepareRead("out_a", Eq(Col("id"), LitInt(1))).ok());
  ASSERT_TRUE(
      controller_->PrepareRead("out_a", Eq(Col("id"), LitInt(2))).ok());
  EXPECT_EQ(CountRows("out_a"), 2u);
  auto migrators = controller_->migrators();
  ASSERT_EQ(migrators.size(), 1u);
  EXPECT_EQ(migrators[0]->tracker()->MigratedCount(), 2u);
}

TEST_F(ControllerTest, SynchronousUniqueValidationRejectsDoomedMigration) {
  // §2.4: a uniqueness constraint over a column with duplicates would
  // doom the migration; the synchronous pre-check reports the error
  // before the new schema goes live.
  MigrationPlan plan = SplitPlan();
  // out_b keyed by grp: kRows rows share kGroups values -> duplicates.
  plan.new_tables[1] = SchemaBuilder("out_b")
                           .AddColumn("id", ValueType::kInt64, false)
                           .AddColumn("grp", ValueType::kInt64, false)
                           .SetPrimaryKey({"grp"})
                           .Build();
  auto opts = LazyOpts(false);
  opts.validate_unique_on_submit = true;
  EXPECT_TRUE(controller_->Submit(std::move(plan), opts)
                  .IsConstraintViolation());
  // Nothing switched: the old table still serves requests, the new ones
  // were torn down.
  EXPECT_TRUE(catalog_.RequireActive("src").ok() ||
              catalog_.GetState("src") == TableState::kRetired);
  EXPECT_FALSE(controller_->HasActiveMigration());
  // A clean plan still submits afterwards.
  // (src may have been retired by the failed attempt before validation —
  // the check runs first, so it must still be active.)
  EXPECT_TRUE(catalog_.RequireActive("src").ok());
}

TEST_F(ControllerTest, SynchronousUniqueValidationAcceptsCleanPlan) {
  auto opts = LazyOpts(false);
  opts.validate_unique_on_submit = true;
  EXPECT_TRUE(controller_->Submit(SplitPlan(), opts).ok());
  EXPECT_TRUE(controller_->HasActiveMigration());
}

TEST_F(ControllerTest, SecondMigrationAfterCompletionAccepted) {
  ASSERT_TRUE(controller_->Submit(SplitPlan(), LazyOpts(true)).ok());
  WaitComplete();
  // Evolve again: out_a -> out_c (add nothing, just copy) — a fresh plan
  // over the previous migration's output.
  MigrationPlan plan2;
  plan2.name = "copy_a";
  plan2.new_tables = {SchemaBuilder("out_c")
                          .AddColumn("id", ValueType::kInt64, false)
                          .AddColumn("val", ValueType::kInt64)
                          .SetPrimaryKey({"id"})
                          .Build()};
  plan2.retire_tables = {"out_a"};
  MigrationStatement stmt;
  stmt.name = "copy";
  stmt.category = MigrationCategory::kOneToOne;
  stmt.input_tables = {"out_a"};
  stmt.output_tables = {"out_c"};
  stmt.provenance.AddPassThrough("id", "out_a", "id");
  stmt.provenance.AddPassThrough("val", "out_a", "val");
  stmt.row_transform =
      [](const Tuple& in) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{0, in}};
  };
  plan2.statements.push_back(std::move(stmt));
  ASSERT_TRUE(controller_->Submit(std::move(plan2), LazyOpts(true)).ok());
  WaitComplete();
  EXPECT_EQ(CountRows("out_c"), static_cast<uint64_t>(kRows));
}

}  // namespace
}  // namespace bullfrog
