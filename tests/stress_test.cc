// Failure-injection and contention stress tests: the §3.5 guarantee that
// conflicting migration efforts keep making progress and never duplicate
// or lose tuples, even when migration transactions abort randomly.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/random.h"
#include "migration/background.h"
#include "migration/statement_migrator.h"
#include "query/scan.h"
#include "txn/txn_manager.h"

namespace bullfrog {
namespace {

class StressTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr int kRows = 2000;
  static constexpr int kGroups = 50;

  void SetUp() override {
    auto src = catalog_.CreateTable(SchemaBuilder("src")
                                        .AddColumn("id", ValueType::kInt64,
                                                   false)
                                        .AddColumn("grp", ValueType::kInt64)
                                        .AddColumn("val", ValueType::kInt64)
                                        .SetPrimaryKey({"id"})
                                        .Build());
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(
        (*src)->CreateIndex("src_by_grp", {"grp"}, false, IndexKind::kHash)
            .ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*src)
                      ->Insert(Tuple{Value::Int(i), Value::Int(i % kGroups),
                                     Value::Int(i)})
                      .ok());
    }
    ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("dst")
                                         .AddColumn("id", ValueType::kInt64,
                                                    false)
                                         .AddColumn("val", ValueType::kInt64)
                                         .SetPrimaryKey({"id"})
                                         .Build())
                    .ok());
  }

  /// A transform that fails with probability ~1/64 (thread-safe, seeded
  /// per test for reproducibility). Kept low enough that a batch of
  /// granules succeeds within a few retries.
  MigrationStatement FlakyCopyStatement() {
    MigrationStatement stmt;
    stmt.name = "flaky_copy";
    stmt.category = MigrationCategory::kOneToOne;
    stmt.input_tables = {"src"};
    stmt.output_tables = {"dst"};
    stmt.provenance.AddPassThrough("id", "src", "id");
    stmt.provenance.AddPassThrough("grp", "src", "grp");
    stmt.provenance.AddPassThrough("val", "src", "val");
    auto counter = std::make_shared<std::atomic<uint64_t>>(GetParam());
    stmt.row_transform =
        [counter](const Tuple& in) -> Result<std::vector<TargetRow>> {
      uint64_t x = counter->fetch_add(0x9e3779b97f4a7c15ULL);
      x ^= x >> 31;
      if (x % 64 == 0) {
        return Status::TxnAborted("injected migration failure");
      }
      return std::vector<TargetRow>{TargetRow{0, Tuple{in[0], in[2]}}};
    };
    return stmt;
  }

  Catalog catalog_;
  TransactionManager txns_;
};

TEST_P(StressTest, ConcurrentWorkersWithInjectedAbortsStayExact) {
  LazyConfig config;
  config.skip_recheck_us = 10;
  config.retry_limit = 1000;
  auto m = MakeStatementMigrator(&catalog_, &txns_, FlakyCopyStatement(),
                                 config);
  ASSERT_TRUE(m.ok());
  std::vector<std::thread> threads;
  std::atomic<int> hard_errors{0};
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(GetParam() + static_cast<uint64_t>(w));
      for (int i = 0; i < 200; ++i) {
        const int64_t g = static_cast<int64_t>(rng.Uniform(kGroups));
        Status s = (*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(g)));
        if (!s.ok() && !s.IsRetryable()) {
          hard_errors.fetch_add(1);
          ADD_FAILURE() << s.ToString();
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(hard_errors.load(), 0);
  // Every touched group's rows are in dst exactly once. (Aborted
  // attempts were undone; retries re-migrated; the dst PK rejects
  // duplicates.)
  EXPECT_GE((*m)->stats().txn_aborts.load(), 1u)
      << "the fault injector should have fired";
  Table* dst = catalog_.FindTable("dst");
  Table* src = catalog_.FindTable("src");
  // Validate values, not just counts.
  dst->Scan([&](RowId, const Tuple& row) {
    const int64_t id = row[0].AsInt();
    Tuple src_row;
    EXPECT_TRUE(src->Read(static_cast<RowId>(id), &src_row).ok());
    EXPECT_EQ(row[1].AsInt(), src_row[2].AsInt());
    return true;
  });
  // All groups were touched with overwhelming probability (8 workers x
  // 200 draws over 50 groups); require full migration of touched rows.
  EXPECT_EQ(dst->NumLiveRows(), static_cast<uint64_t>(kRows));
}

TEST_P(StressTest, BackgroundPlusForegroundPlusAborts) {
  LazyConfig config;
  config.background_start_delay_ms = 0;
  config.background_pause_us = 0;
  config.retry_limit = 1000;
  auto m = MakeStatementMigrator(&catalog_, &txns_, FlakyCopyStatement(),
                                 config);
  ASSERT_TRUE(m.ok());
  BackgroundMigrator bg({m->get()}, config);
  bg.Start();
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(GetParam() * 31 + static_cast<uint64_t>(w));
      for (int i = 0; i < 100; ++i) {
        const int64_t id = static_cast<int64_t>(rng.Uniform(kRows));
        Status s = (*m)->MigrateForPredicate(Eq(Col("id"), LitInt(id)));
        if (!s.ok() && !s.IsRetryable()) {
          ADD_FAILURE() << s.ToString();
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  Stopwatch sw;
  while (!bg.finished() && sw.ElapsedMillis() < 30000) {
    Clock::SleepMillis(5);
  }
  EXPECT_TRUE(bg.finished());
  EXPECT_EQ(catalog_.FindTable("dst")->NumLiveRows(),
            static_cast<uint64_t>(kRows));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(1, 42, 20260705));

}  // namespace
}  // namespace bullfrog
