// Migration-train tests (tentpole): per-table migration state lets
// submits over disjoint tables run concurrently, overlapping lazy
// submits queue (kQueued) and auto-start when their predecessors
// complete, chained old->mid->new hops drain in order with read-through
// resolving through the chain, and a crash with queued scripts in the
// WAL replays the whole train in submit order and still converges.

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "replication/wal_dir.h"
#include "sql/engine.h"

namespace bullfrog {
namespace {

namespace fs = std::filesystem;

MigrationController::SubmitOptions Lazy(bool background,
                                        int64_t delay_ms = 10) {
  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.enable_background = background;
  opts.lazy.background_start_delay_ms = delay_ms;
  opts.lazy.background_pause_us = 0;
  return opts;
}

void MustExec(sql::SqlEngine* engine, const std::string& stmt) {
  auto r = engine->Execute(stmt);
  ASSERT_TRUE(r.ok()) << stmt << ": " << r.status();
}

void SeedTable(sql::SqlEngine* engine, const std::string& name, int rows) {
  MustExec(engine,
           "CREATE TABLE " + name + " (id INT PRIMARY KEY, v INT)");
  for (int i = 0; i < rows; ++i) {
    MustExec(engine, "INSERT INTO " + name + " VALUES (" +
                         std::to_string(i) + ", " + std::to_string(i * 10) +
                         ")");
  }
}

std::string HopScript(const std::string& src, const std::string& dst) {
  return "CREATE TABLE " + dst + " PRIMARY KEY (id) AS SELECT id, v FROM " +
         src + "; DROP TABLE " + src + ";";
}

bool WaitComplete(MigrationController* c, int timeout_ms = 30000) {
  Stopwatch sw;
  while (!c->IsComplete() && sw.ElapsedMillis() < timeout_ms) {
    Clock::SleepMillis(5);
  }
  return c->IsComplete();
}

TEST(MigrationTrainTest, DisjointMigrationsRunConcurrently) {
  Database db;
  sql::SqlEngine engine(&db);
  SeedTable(&engine, "a", 40);
  SeedTable(&engine, "b", 40);

  // No background: both migrations stay in flight, proving they coexist
  // (the old controller's global state would bounce the second submit).
  ASSERT_TRUE(
      engine.SubmitMigrationScript(HopScript("a", "a2"), Lazy(false)).ok());
  const Status second =
      engine.SubmitMigrationScript(HopScript("b", "b2"), Lazy(false));
  ASSERT_TRUE(second.ok()) << second.ToString();

  EXPECT_EQ(db.controller().ActiveMigrations(), 2u);
  EXPECT_EQ(db.controller().QueuedMigrations(), 0u);
  EXPECT_TRUE(db.controller().HasActiveMigration());
  EXPECT_FALSE(db.controller().IsComplete());

  // Each migration's lazy path serves its own output table.
  auto ra = engine.Execute("SELECT v FROM a2 WHERE id = 3");
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_EQ(ra->rows.size(), 1u);
  EXPECT_EQ(ra->rows[0][0].AsInt(), 30);
  auto rb = engine.Execute("SELECT v FROM b2 WHERE id = 7");
  ASSERT_TRUE(rb.ok()) << rb.status();
  ASSERT_EQ(rb->rows.size(), 1u);
  EXPECT_EQ(rb->rows[0][0].AsInt(), 70);

  // The train report names both entries.
  const std::string report = db.controller().StatusReport();
  EXPECT_NE(report.find("migration train"), std::string::npos) << report;
  EXPECT_NE(report.find("sql:a2"), std::string::npos) << report;
  EXPECT_NE(report.find("sql:b2"), std::string::npos) << report;
}

TEST(MigrationTrainTest, OverlappingSubmitQueuesAndAutoStarts) {
  Database db;
  sql::SqlEngine engine(&db);
  SeedTable(&engine, "t0", 64);

  ASSERT_TRUE(
      engine.SubmitMigrationScript(HopScript("t0", "t1"), Lazy(true)).ok());
  // t1 -> t2 overlaps the in-flight t0 -> t1 hop (and t1 does not even
  // exist yet): the submit parks on the train instead of failing.
  const Status queued =
      engine.SubmitMigrationScript(HopScript("t1", "t2"), Lazy(true));
  ASSERT_TRUE(queued.IsQueued()) << queued.ToString();
  EXPECT_NE(queued.message().find("position 1"), std::string::npos)
      << queued.ToString();
  EXPECT_EQ(db.controller().QueuedMigrations(), 1u);

  // No operator action: the queued hop starts when its predecessor
  // completes and the whole chain drains.
  ASSERT_TRUE(WaitComplete(&db.controller()));
  EXPECT_EQ(db.controller().QueuedMigrations(), 0u);
  auto r = engine.Execute("SELECT COUNT(*) AS n FROM t2");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows[0][0].AsInt(), 64);
  EXPECT_FALSE(engine.Execute("SELECT * FROM t0").ok());
  EXPECT_FALSE(engine.Execute("SELECT * FROM t1").ok());
}

TEST(MigrationTrainTest, ChainedHopsReadThroughAndConvergeInOrder) {
  Database db;
  sql::SqlEngine engine(&db);
  SeedTable(&engine, "t0", 48);

  // A 3-hop chain submitted back to back. The 200ms background delay on
  // the first hop keeps it in flight long enough for the mid-train reads
  // below to exercise the lazy path while two entries sit queued.
  ASSERT_TRUE(engine
                  .SubmitMigrationScript(HopScript("t0", "t1"),
                                         Lazy(true, /*delay_ms=*/200))
                  .ok());
  ASSERT_TRUE(
      engine.SubmitMigrationScript(HopScript("t1", "t2"), Lazy(true))
          .IsQueued());
  ASSERT_TRUE(
      engine.SubmitMigrationScript(HopScript("t2", "t3"), Lazy(true))
          .IsQueued());
  EXPECT_EQ(db.controller().QueuedMigrations(), 2u);

  // Mid-train: the first hop's output reads through lazily; downstream
  // hops have not switched, so their outputs do not exist yet.
  auto r1 = engine.Execute("SELECT v FROM t1 WHERE id = 11");
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_EQ(r1->rows.size(), 1u);
  EXPECT_EQ(r1->rows[0][0].AsInt(), 110);
  EXPECT_FALSE(engine.Execute("SELECT * FROM t3").ok());

  ASSERT_TRUE(WaitComplete(&db.controller()));
  auto r3 = engine.Execute("SELECT COUNT(*) AS n, SUM(v) AS s FROM t3");
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_EQ(r3->rows[0][0].AsInt(), 48);
  EXPECT_DOUBLE_EQ(r3->rows[0][1].AsDouble(),
                   static_cast<double>(10 * (48 * 47) / 2));
  // Every intermediate hop retired its input.
  EXPECT_FALSE(engine.Execute("SELECT * FROM t0").ok());
  EXPECT_FALSE(engine.Execute("SELECT * FROM t1").ok());
  EXPECT_FALSE(engine.Execute("SELECT * FROM t2").ok());
}

// Satellite: kill -9 with a started hop plus two queued scripts in the
// WAL. Replay must restore the queue in submit order and the train must
// still converge after recovery hands ownership back to this node.
TEST(MigrationTrainTest, CrashWithQueuedScriptsReplaysTrainInOrder) {
  const std::string dir = ::testing::TempDir() + "bf_train_crash_" +
                          std::to_string(Clock::NowMicros());
  fs::remove_all(dir);

  {
    Database a;
    replication::WalDir wal;
    ASSERT_TRUE(wal.Open(dir).ok());
    ASSERT_TRUE(wal.StartLogging(&a).ok());
    sql::SqlEngine engine(&a);
    SeedTable(&engine, "t0", 32);
    // No background: the first hop is switched but never finishes, the
    // two chained hops stay queued — all three "migrate" records are
    // durable, none has completed.
    ASSERT_TRUE(
        engine.SubmitMigrationScript(HopScript("t0", "t1"), Lazy(false))
            .ok());
    ASSERT_TRUE(
        engine.SubmitMigrationScript(HopScript("t1", "t2"), Lazy(false))
            .IsQueued());
    ASSERT_TRUE(
        engine.SubmitMigrationScript(HopScript("t2", "t3"), Lazy(false))
            .IsQueued());
    // Destruction without completion == the process dying mid-train; the
    // WAL directory is all that survives.
  }

  Database b;
  replication::WalDir wal;
  ASSERT_TRUE(wal.Open(dir).ok());
  ASSERT_TRUE(wal.Recover(&b).ok());
  // Replay parked the train in replicated mode: the started hop is
  // active, the two queued scripts are back in submit order.
  ASSERT_TRUE(b.controller().HasActiveMigration());
  EXPECT_EQ(b.controller().ActiveMigrations(), 1u);
  EXPECT_EQ(b.controller().QueuedMigrations(), 2u);

  // This node is the primary again: rebuild trackers and resume local
  // (lazy + background) migration, exactly like bullfrog_serverd does.
  ASSERT_TRUE(b.controller().RecoverFromRedoLog().ok());
  ASSERT_TRUE(wal.StartLogging(&b).ok());

  ASSERT_TRUE(WaitComplete(&b.controller()));
  sql::SqlEngine engine(&b);
  auto r = engine.Execute("SELECT COUNT(*) AS n FROM t3");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows[0][0].AsInt(), 32);
  EXPECT_FALSE(engine.Execute("SELECT * FROM t0").ok());

  // A second recovery from the post-convergence WAL replays the full
  // train including its migrate_start / migrate_complete markers.
  Database c;
  replication::WalDir wal2;
  ASSERT_TRUE(wal2.Open(dir).ok());
  ASSERT_TRUE(wal2.Recover(&c).ok());
  sql::SqlEngine engine_c(&c);
  auto rc = engine_c.Execute("SELECT COUNT(*) AS n FROM t3");
  ASSERT_TRUE(rc.ok()) << rc.status();
  EXPECT_EQ(rc->rows[0][0].AsInt(), 32);

  fs::remove_all(dir);
}

// TSan target: concurrent disjoint submits racing each other and racing
// lazy readers. Exercises the per-table gate lookups and the pump thread
// under contention; run under -DSANITIZE=thread in CI.
TEST(MigrationTrainTest, ConcurrentDisjointSubmitsAndReadsAreRaceFree) {
  constexpr int kTables = 4;
  constexpr int kRows = 32;
  Database db;
  sql::SqlEngine engine(&db);
  for (int t = 0; t < kTables; ++t) {
    SeedTable(&engine, "c" + std::to_string(t), kRows);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kTables);
  for (int t = 0; t < kTables; ++t) {
    workers.emplace_back([&db, &failures, t] {
      sql::SqlEngine local(&db);
      const std::string src = "c" + std::to_string(t);
      const std::string dst = src + "x";
      const Status st =
          local.SubmitMigrationScript(HopScript(src, dst), Lazy(true));
      if (!st.ok() && !st.IsQueued()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRows; ++i) {
        auto r = local.Execute("SELECT v FROM " + dst + " WHERE id = " +
                               std::to_string(i));
        if (!r.ok() || r->rows.size() != 1 ||
            r->rows[0][0].AsInt() != i * 10) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(WaitComplete(&db.controller()));
  for (int t = 0; t < kTables; ++t) {
    auto r = engine.Execute("SELECT COUNT(*) AS n FROM c" +
                            std::to_string(t) + "x");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->rows[0][0].AsInt(), kRows);
  }
}

}  // namespace
}  // namespace bullfrog
