#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "migration/statement_migrator.h"
#include "query/scan.h"
#include "txn/txn_manager.h"

namespace bullfrog {
namespace {

/// Fixture: src(id, grp, val) with kRows rows, grp = id % kGroups.
/// - split: src -> out_a(id, val) + out_b(id, grp)      [1:n, bitmap]
/// - sums:  src -> sums(grp, total=SUM(val)) BY grp     [n:1, hashmap]
/// - join:  src JOIN dim ON grp = g -> joined(id, grp, val, label)
class MigratorTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 500;
  static constexpr int kGroups = 20;

  void SetUp() override {
    auto src = catalog_.CreateTable(SchemaBuilder("src")
                                        .AddColumn("id", ValueType::kInt64,
                                                   false)
                                        .AddColumn("grp", ValueType::kInt64)
                                        .AddColumn("val", ValueType::kInt64)
                                        .SetPrimaryKey({"id"})
                                        .Build());
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(
        (*src)->CreateIndex("src_by_grp", {"grp"}, false, IndexKind::kHash)
            .ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*src)
                      ->Insert(Tuple{Value::Int(i), Value::Int(i % kGroups),
                                     Value::Int(i * 10)})
                      .ok());
    }
  }

  void CreateSplitOutputs() {
    ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("out_a")
                                         .AddColumn("id", ValueType::kInt64,
                                                    false)
                                         .AddColumn("val", ValueType::kInt64)
                                         .SetPrimaryKey({"id"})
                                         .Build())
                    .ok());
    ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("out_b")
                                         .AddColumn("id", ValueType::kInt64,
                                                    false)
                                         .AddColumn("grp", ValueType::kInt64)
                                         .SetPrimaryKey({"id"})
                                         .Build())
                    .ok());
  }

  MigrationStatement SplitStatement() {
    MigrationStatement stmt;
    stmt.name = "split_src";
    stmt.category = MigrationCategory::kOneToMany;
    stmt.input_tables = {"src"};
    stmt.output_tables = {"out_a", "out_b"};
    stmt.provenance.AddPassThrough("id", "src", "id");
    stmt.provenance.AddPassThrough("grp", "src", "grp");
    stmt.provenance.AddPassThrough("val", "src", "val");
    stmt.row_transform =
        [this](const Tuple& in) -> Result<std::vector<TargetRow>> {
      if (fail_transforms_.load() > 0) {
        fail_transforms_.fetch_sub(1);
        return Status::TxnAborted("injected transform failure");
      }
      return std::vector<TargetRow>{TargetRow{0, Tuple{in[0], in[2]}},
                                    TargetRow{1, Tuple{in[0], in[1]}}};
    };
    return stmt;
  }

  void CreateSumsOutput() {
    ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("sums")
                                         .AddColumn("grp", ValueType::kInt64,
                                                    false)
                                         .AddColumn("total",
                                                    ValueType::kInt64)
                                         .SetPrimaryKey({"grp"})
                                         .Build())
                    .ok());
  }

  MigrationStatement SumsStatement() {
    MigrationStatement stmt;
    stmt.name = "sum_src";
    stmt.category = MigrationCategory::kManyToOne;
    stmt.input_tables = {"src"};
    stmt.output_tables = {"sums"};
    stmt.group_key_columns = {"grp"};
    stmt.provenance.AddPassThrough("grp", "src", "grp");
    stmt.provenance.AddDerived("total");
    stmt.group_transform =
        [](const Tuple& key,
           const std::vector<Tuple>& rows) -> Result<std::vector<TargetRow>> {
      if (rows.empty()) return std::vector<TargetRow>{};
      int64_t total = 0;
      for (const Tuple& r : rows) total += r[2].AsInt();
      return std::vector<TargetRow>{
          TargetRow{0, Tuple{key[0], Value::Int(total)}}};
    };
    return stmt;
  }

  Result<std::unique_ptr<StatementMigrator>> Make(MigrationStatement stmt,
                                                  LazyConfig config = {}) {
    return MakeStatementMigrator(&catalog_, &txns_, std::move(stmt), config);
  }

  uint64_t CountRows(const std::string& table) {
    Table* t = catalog_.FindTable(table);
    return t == nullptr ? 0 : t->NumLiveRows();
  }

  void DrainBackground(StatementMigrator* m) {
    bool done = false;
    int safety = 100000;
    while (!done && --safety > 0) {
      ASSERT_TRUE(m->MigrateBackgroundChunk(64, &done).ok());
    }
    ASSERT_TRUE(done);
  }

  Catalog catalog_;
  TransactionManager txns_;
  std::atomic<int> fail_transforms_{0};
};

TEST_F(MigratorTest, PredicateMigratesOnlyRelevantRows) {
  CreateSplitOutputs();
  auto m = Make(SplitStatement());
  ASSERT_TRUE(m.ok());
  // A point query on the new schema: only row id=42 must move.
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(42))).ok());
  EXPECT_EQ(CountRows("out_a"), 1u);
  EXPECT_EQ(CountRows("out_b"), 1u);
  EXPECT_EQ((*m)->stats().units_migrated.load(), 1u);
  EXPECT_FALSE((*m)->IsComplete());
  // Re-running the same request migrates nothing more (fast path).
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(42))).ok());
  EXPECT_EQ(CountRows("out_a"), 1u);
  EXPECT_GE((*m)->stats().already_migrated_hits.load(), 1u);
}

TEST_F(MigratorTest, PredicateOnSecondaryColumnUsesIndex) {
  CreateSplitOutputs();
  auto m = Make(SplitStatement());
  ASSERT_TRUE(m.ok());
  // grp = 3 matches kRows / kGroups rows.
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(3))).ok());
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows / kGroups));
}

TEST_F(MigratorTest, NullPredicateMigratesEverything) {
  CreateSplitOutputs();
  auto m = Make(SplitStatement());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(nullptr).ok());
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
  EXPECT_EQ(CountRows("out_b"), static_cast<uint64_t>(kRows));
  EXPECT_TRUE((*m)->IsComplete());
  EXPECT_DOUBLE_EQ((*m)->Progress(), 1.0);
}

TEST_F(MigratorTest, BackgroundSweepCompletesMigration) {
  CreateSplitOutputs();
  auto m = Make(SplitStatement());
  ASSERT_TRUE(m.ok());
  // Seed some foreground work first.
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(1))).ok());
  DrainBackground(m->get());
  EXPECT_TRUE((*m)->IsComplete());
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
  // Exactly once: out_a PK would have rejected duplicates, but also the
  // row count proves no row was missed.
}

TEST_F(MigratorTest, PageGranularityMigratesWholeGranules) {
  CreateSplitOutputs();
  LazyConfig config;
  config.granularity = 64;
  auto m = Make(SplitStatement(), config);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(10))).ok());
  // The whole 64-row granule moved, not just row 10 (Fig 11 semantics).
  EXPECT_EQ(CountRows("out_a"), 64u);
  EXPECT_EQ((*m)->stats().units_migrated.load(), 1u);
}

class MigratorGranularityTest
    : public MigratorTest,
      public ::testing::WithParamInterface<uint64_t> {};

TEST_P(MigratorGranularityTest, FinalStateIndependentOfGranularity) {
  CreateSplitOutputs();
  LazyConfig config;
  config.granularity = GetParam();
  auto m = Make(SplitStatement(), config);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(2))).ok());
  DrainBackground(m->get());
  EXPECT_TRUE((*m)->IsComplete());
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
  EXPECT_EQ(CountRows("out_b"), static_cast<uint64_t>(kRows));
}

INSTANTIATE_TEST_SUITE_P(Granularities, MigratorGranularityTest,
                         ::testing::Values(1, 3, 64, 128, 1024));

TEST_F(MigratorTest, OnConflictModeProducesNoDuplicates) {
  CreateSplitOutputs();
  LazyConfig config;
  config.duplicate_detection = DuplicateDetection::kOnConflictClause;
  auto m = Make(SplitStatement(), config);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(1))).ok());
  const uint64_t after_first = CountRows("out_a");
  // §3.7: conflicts are detected at insert; re-migrating does no harm.
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(1))).ok());
  EXPECT_EQ(CountRows("out_a"), after_first);
  DrainBackground(m->get());
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
}

TEST_F(MigratorTest, NoTrackingModeMigratesWithoutDataStructures) {
  CreateSplitOutputs();
  LazyConfig config;
  config.maintain_tracker = false;
  auto m = Make(SplitStatement(), config);
  ASSERT_TRUE(m.ok());
  // Fig 9 mode: the workload guarantees exactly-once coverage itself.
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(1))).ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(2))).ok());
  EXPECT_EQ(CountRows("out_a"), 2u);
  bool done = false;
  EXPECT_FALSE((*m)->MigrateBackgroundChunk(8, &done).ok());
}

TEST_F(MigratorTest, TransformFailureResetsLockBitsAndIsRetryable) {
  CreateSplitOutputs();
  auto m = Make(SplitStatement());
  ASSERT_TRUE(m.ok());
  fail_transforms_.store(1);
  // First attempt hits the injected failure; the per-statement retry loop
  // retries with fresh transactions (§3.5 reset allows the retry).
  Status s = (*m)->MigrateForPredicate(Eq(Col("id"), LitInt(5)));
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(CountRows("out_a"), 1u);
  EXPECT_GE((*m)->stats().txn_aborts.load(), 1u);
  // The abort undid the partial inserts: out_b must match out_a.
  EXPECT_EQ(CountRows("out_b"), 1u);
}

TEST_F(MigratorTest, ConcurrentOverlappingRequestsMigrateExactlyOnce) {
  CreateSplitOutputs();
  auto m = Make(SplitStatement());
  ASSERT_TRUE(m.ok());
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGroups; ++g) {
        Status s = (*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(g)));
        if (!s.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  // Exactly kRows outputs in each table: the PK constraints would have
  // failed a duplicate migration, and the counts prove nothing is missing.
  EXPECT_EQ(CountRows("out_a"), static_cast<uint64_t>(kRows));
  EXPECT_EQ(CountRows("out_b"), static_cast<uint64_t>(kRows));
  EXPECT_TRUE((*m)->IsComplete());
}

// --- aggregates ---------------------------------------------------------

TEST_F(MigratorTest, AggregateMigratesWholeGroups) {
  CreateSumsOutput();
  auto m = Make(SumsStatement());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(4))).ok());
  Table* sums = catalog_.FindTable("sums");
  auto rows = CollectWhere(*sums, nullptr);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  // SUM of val over ids with id % kGroups == 4.
  int64_t expected = 0;
  for (int i = 4; i < kRows; i += kGroups) expected += i * 10;
  EXPECT_EQ(rows->front().second[1].AsInt(), expected);
}

TEST_F(MigratorTest, AggregatePredicateOnDerivedColumnMigratesAll) {
  CreateSumsOutput();
  auto m = Make(SumsStatement());
  ASSERT_TRUE(m.ok());
  // total is derived -> unpushable -> all groups are candidates (§2.4).
  ASSERT_TRUE((*m)->MigrateForPredicate(Gt(Col("total"), LitInt(0))).ok());
  EXPECT_EQ(CountRows("sums"), static_cast<uint64_t>(kGroups));
}

TEST_F(MigratorTest, AggregateBackgroundCompletes) {
  CreateSumsOutput();
  auto m = Make(SumsStatement());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(0))).ok());
  DrainBackground(m->get());
  EXPECT_TRUE((*m)->IsComplete());
  EXPECT_EQ(CountRows("sums"), static_cast<uint64_t>(kGroups));
  // Totals are correct for every group.
  Table* sums = catalog_.FindTable("sums");
  auto rows = CollectWhere(*sums, nullptr);
  ASSERT_TRUE(rows.ok());
  for (auto& [rid, row] : *rows) {
    const int64_t g = row[0].AsInt();
    int64_t expected = 0;
    for (int i = static_cast<int>(g); i < kRows; i += kGroups) {
      expected += i * 10;
    }
    EXPECT_EQ(row[1].AsInt(), expected) << "group " << g;
  }
}

TEST_F(MigratorTest, AggregateConcurrentExactlyOnce) {
  CreateSumsOutput();
  auto m = Make(SumsStatement());
  ASSERT_TRUE(m.ok());
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&] {
      for (int g = kGroups - 1; g >= 0; --g) {
        Status s = (*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(g)));
        if (!s.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  // One aggregate row per group — the PK on grp would have rejected a
  // double migration.
  EXPECT_EQ(CountRows("sums"), static_cast<uint64_t>(kGroups));
}

TEST_F(MigratorTest, AggregateBoundaryExcludesLateInserts) {
  CreateSumsOutput();
  auto m = Make(SumsStatement());
  ASSERT_TRUE(m.ok());
  // A row inserted after the migrator captured its boundary must not be
  // double-counted by migration (the application maintains it instead).
  Table* src = catalog_.FindTable("src");
  ASSERT_TRUE(src->Insert(Tuple{Value::Int(kRows + 1), Value::Int(0),
                                Value::Int(999999)})
                  .ok());
  ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("grp"), LitInt(0))).ok());
  Table* sums = catalog_.FindTable("sums");
  auto rows = CollectWhere(*sums, Eq(Col("grp"), LitInt(0)));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  int64_t expected = 0;
  for (int i = 0; i < kRows; i += kGroups) expected += i * 10;
  EXPECT_EQ(rows->front().second[1].AsInt(), expected);
}

}  // namespace
}  // namespace bullfrog
