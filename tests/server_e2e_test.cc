// End-to-end tests over the network service layer: a real TCP server,
// real client connections, SQL over the wire, a lazy migration submitted
// via MIGRATE while concurrent clients run new-schema transactions, ADMIN
// progress introspection, and graceful shutdown draining.
//
// By default each test starts an in-process Server on an ephemeral
// loopback port. When BF_SERVER_ADDR=host:port is set (the CI smoke leg),
// the client-facing tests run against that external bullfrog_serverd
// instead, and in-process-only tests (shutdown drain, queue limits, idle
// timeout) are skipped. External runs share one server process, so table
// names are prefixed per test.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"

namespace bullfrog::server {
namespace {

const char* ExternalAddr() {
  const char* addr = std::getenv("BF_SERVER_ADDR");
  return (addr != nullptr && *addr != '\0') ? addr : nullptr;
}

/// Value of the first sample whose full series name (family plus label
/// body, e.g. `bullfrog_migration_units_migrated{mode="lazy"}`) matches
/// exactly; -1 when the series is absent from the scrape.
double MetricValue(const std::string& scrape, const std::string& series) {
  const std::string text = "\n" + scrape;
  const std::string needle = "\n" + series + " ";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/// Structural check of the Prometheus exposition: every non-comment line
/// is `series value` with a parseable value. Returns the number of
/// sample lines.
size_t ValidatePrometheus(const std::string& scrape) {
  size_t samples = 0;
  size_t start = 0;
  while (start < scrape.size()) {
    size_t end = scrape.find('\n', start);
    if (end == std::string::npos) end = scrape.size();
    const std::string line = scrape.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << "bad comment: " << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "bad sample line: " << line;
      continue;
    }
    char* parse_end = nullptr;
    (void)std::strtod(line.c_str() + space + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "unparseable value: " << line;
    // Series names must not contain spaces; a label body with an
    // embedded space would make rfind(' ') split mid-name.
    EXPECT_EQ(line.find(' '), space) << "space inside series name: " << line;
    ++samples;
  }
  return samples;
}

class ServerE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (ExternalAddr() != nullptr) {
      addr_ = ExternalAddr();
      return;
    }
    db_ = std::make_unique<Database>();
    ServerConfig config;
    config.workers = 12;
    config.session_queue_capacity = 32;
    config.max_request_bytes = 2u << 20;
    config.migrate_options.lazy.background_start_delay_ms = 200;
    config.migrate_options.lazy.background_threads = 2;
    config.migrate_options.lazy.background_batch = 16;
    config.migrate_options.lazy.background_pause_us = 200;
    server_ = std::make_unique<Server>(db_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
    addr_ = "127.0.0.1:" + std::to_string(server_->port());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  bool external() const { return ExternalAddr() != nullptr; }

  Client Connect() {
    Client c;
    Status s = c.Connect(addr_);
    EXPECT_TRUE(s.ok()) << s;
    return c;
  }

  /// Unique table name per test + run, so one external server can host
  /// the whole suite.
  std::string TableName(const std::string& base) {
    return base + "_" +
           std::to_string(
               static_cast<uint64_t>(Clock::NowMicros() & 0xffffff));
  }

  std::string addr_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerE2ETest, PingQueryRoundTrip) {
  Client c = Connect();
  ASSERT_TRUE(c.Ping().ok());

  const std::string t = TableName("kv");
  ASSERT_TRUE(
      c.Query("CREATE TABLE " + t + " (id INT PRIMARY KEY, score DOUBLE, "
              "name TEXT)")
          .ok());
  auto ins = c.Query("INSERT INTO " + t + " VALUES (1, 2.5, 'héllo'), "
                     "(2, -0.5, NULL)");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->affected, 2u);

  auto rows = c.Query("SELECT * FROM " + t + " WHERE id = 1");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->columns.size(), 3u);
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(rows->rows[0][1].AsDouble(), 2.5);
  EXPECT_EQ(rows->rows[0][2].AsString(), "héllo");

  auto agg = c.Query("SELECT COUNT(*) AS n FROM " + t);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->rows.size(), 1u);
  EXPECT_EQ(agg->rows[0][0].AsInt(), 2);
}

TEST_F(ServerE2ETest, TransactionsAreSessionScoped) {
  const std::string t = TableName("txn");
  Client a = Connect();
  ASSERT_TRUE(a.Query("CREATE TABLE " + t + " (id INT PRIMARY KEY)").ok());
  ASSERT_TRUE(a.Query("BEGIN").ok());
  ASSERT_TRUE(a.Query("INSERT INTO " + t + " VALUES (1)").ok());
  // A second BEGIN on the same session is a clean error.
  EXPECT_FALSE(a.Query("BEGIN").ok());
  ASSERT_TRUE(a.Query("COMMIT").ok());
  // COMMIT with no open transaction: clean error, session stays usable.
  EXPECT_FALSE(a.Query("COMMIT").ok());
  auto rows = a.Query("SELECT * FROM " + t);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);

  // ROLLBACK discards.
  ASSERT_TRUE(a.Query("BEGIN").ok());
  ASSERT_TRUE(a.Query("INSERT INTO " + t + " VALUES (2)").ok());
  ASSERT_TRUE(a.Query("ROLLBACK").ok());
  rows = a.Query("SELECT * FROM " + t);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
}

TEST_F(ServerE2ETest, DisconnectAbortsOpenTransaction) {
  const std::string t = TableName("drop_txn");
  {
    Client a = Connect();
    ASSERT_TRUE(a.Query("CREATE TABLE " + t + " (id INT PRIMARY KEY)").ok());
    ASSERT_TRUE(a.Query("BEGIN").ok());
    ASSERT_TRUE(a.Query("INSERT INTO " + t + " VALUES (7)").ok());
    // Client vanishes without COMMIT; server must abort and release locks.
  }
  Client b = Connect();
  // Poll briefly: the server notices the disconnect asynchronously.
  Stopwatch waited;
  for (;;) {
    auto rows = b.Query("SELECT * FROM " + t);
    ASSERT_TRUE(rows.ok()) << rows.status();
    if (rows->rows.empty()) break;  // Uncommitted insert was rolled back.
    ASSERT_LT(waited.ElapsedSeconds(), 10.0)
        << "dangling transaction was never aborted";
    Clock::SleepMillis(20);
  }
}

TEST_F(ServerE2ETest, ErrorPathsKeepTheConnection) {
  Client c = Connect();
  const std::string t = TableName("err");
  ASSERT_TRUE(c.Query("CREATE TABLE " + t + " (id INT PRIMARY KEY, "
                      "name TEXT)")
                  .ok());

  // Malformed statement: clean error, connection survives.
  auto bad = c.Query("SELEKT harder");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.status().IsUnavailable()) << bad.status();
  ASSERT_TRUE(c.Ping().ok());

  // Unknown table.
  bad = c.Query("SELECT * FROM definitely_not_a_table_42");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.status().IsUnavailable());
  ASSERT_TRUE(c.Ping().ok());

  // Unknown column / arity mismatch.
  EXPECT_FALSE(c.Query("SELECT nope FROM " + t).ok());
  EXPECT_FALSE(c.Query("INSERT INTO " + t + " VALUES (1)").ok());
  ASSERT_TRUE(c.Ping().ok());

  // Oversized string value (within the request cap): engine-level error.
  const std::string big(sql::SqlEngine::kMaxStringValueBytes + 16, 'x');
  bad = c.Query("INSERT INTO " + t + " VALUES (1, '" + big + "')");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument)
      << bad.status();
  ASSERT_TRUE(c.Ping().ok());

  // Oversized request frame: drained server-side, clean protocol error,
  // connection still in sync.
  const size_t request_cap = external() ? (4u << 20) : (2u << 20);
  const std::string huge(request_cap + 1024, 'y');
  bad = c.Query("INSERT INTO " + t + " VALUES (2, '" + huge + "')");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument)
      << bad.status();
  ASSERT_TRUE(c.Ping().ok());

  // Bad migration script: clean error.
  EXPECT_FALSE(c.Migrate("CREATE TABLE x AS banana").ok());
  ASSERT_TRUE(c.Ping().ok());

  // The session still works for real statements afterwards.
  auto ok = c.Query("INSERT INTO " + t + " VALUES (3, 'fine')");
  ASSERT_TRUE(ok.ok()) << ok.status();
}

// The ISSUE acceptance test: >= 8 concurrent client connections run
// new-schema transactions through the server while a lazy migration
// submitted over the wire completes; ADMIN progress reaches 100%;
// graceful shutdown afterwards drains cleanly (exercised in TearDown for
// the in-process run, and by the CI smoke script for serverd).
TEST_F(ServerE2ETest, ConcurrentClientsDriveLazyMigrationToCompletion) {
  constexpr int kClients = 8;
  constexpr int kRows = 1500;

  const std::string old_table = TableName("accts");
  const std::string new_table = old_table + "_v2";

  Client admin = Connect();
  ASSERT_TRUE(admin
                  .Query("CREATE TABLE " + old_table +
                         " (id INT PRIMARY KEY, bal INT)")
                  .ok());
  // Load in batched INSERTs to keep frames small.
  for (int base = 0; base < kRows;) {
    std::string sql = "INSERT INTO " + old_table + " VALUES ";
    for (int i = 0; i < 100 && base < kRows; ++i, ++base) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(base) + ", " + std::to_string(base % 97) +
             ")";
    }
    auto r = admin.Query(sql);
    ASSERT_TRUE(r.ok()) << r.status();
  }

  // Submit the lazy migration over the wire: logical switch is immediate.
  Status ms = admin.Migrate(
      "CREATE TABLE " + new_table + " PRIMARY KEY (id) AS "
      "SELECT id, bal, bal * 2 AS dbl FROM " + old_table + ";\n"
      "DROP TABLE " + old_table + ";");
  ASSERT_TRUE(ms.ok()) << ms;

  // Old schema is retired the instant MIGRATE returns.
  auto dropped = admin.Query("SELECT * FROM " + old_table);
  EXPECT_FALSE(dropped.ok());
  EXPECT_FALSE(dropped.status().IsUnavailable());

  // ADMIN metrics mid-migration: the scrape parses, the migration shows
  // as active, and granule counters are live before completion.
  {
    auto scrape = admin.Admin("metrics");
    ASSERT_TRUE(scrape.ok()) << scrape.status();
    EXPECT_GT(ValidatePrometheus(*scrape), 0u);
    EXPECT_GE(MetricValue(*scrape, "bullfrog_migration_active"), 1.0)
        << *scrape;
    EXPECT_GE(MetricValue(*scrape, "bullfrog_migration_units_migrated"), 0.0)
        << *scrape;
  }

  // 8 concurrent connections hammer the *new* schema while the lazy
  // migration drains underneath them.
  std::atomic<int> failures{0};
  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int w = 0; w < kClients; ++w) {
    clients.emplace_back([&, w] {
      Client c;
      if (!c.Connect(addr_).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int id = static_cast<int>((rng >> 33) % kRows);
        const std::string key = std::to_string(id);
        if ((rng & 1) == 0) {
          auto r = c.Query("SELECT id, bal, dbl FROM " + new_table +
                           " WHERE id = " + key);
          if (!r.ok()) {
            if (!r.status().IsRetryable()) failures.fetch_add(1);
            continue;
          }
          if (r->rows.size() != 1 ||
              r->rows[0][2].AsInt() != r->rows[0][1].AsInt() * 2) {
            failures.fetch_add(1);
          }
        } else {
          auto r = c.Query("UPDATE " + new_table +
                           " SET bal = bal + 97, dbl = dbl + 194 "
                           "WHERE id = " + key);
          if (!r.ok() && !r.status().IsRetryable()) failures.fetch_add(1);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Poll ADMIN progress over the wire until the migration completes.
  Stopwatch waited;
  double progress = 0;
  for (;;) {
    auto p = admin.MigrationProgress();
    ASSERT_TRUE(p.ok()) << p.status();
    progress = *p;
    if (progress >= 1.0) break;
    ASSERT_LT(waited.ElapsedSeconds(), 60.0)
        << "migration never completed; progress=" << progress;
    Clock::SleepMillis(25);
  }
  EXPECT_DOUBLE_EQ(progress, 1.0);

  // Progress can reach 1.0 via lazy accesses alone; the controller only
  // declares the migration *complete* once background threads finish
  // their sweep (§2.2). Poll the full report until it does.
  std::string report_text;
  for (;;) {
    auto report = admin.Admin("report");
    ASSERT_TRUE(report.ok()) << report.status();
    report_text = *report;
    if (report_text.find("complete=1") != std::string::npos) break;
    ASSERT_LT(waited.ElapsedSeconds(), 60.0)
        << "migration never declared complete:\n" << report_text;
    Clock::SleepMillis(25);
  }
  EXPECT_NE(report_text.find("latency query"), std::string::npos)
      << report_text;
  // The report now embeds the migration trace timeline.
  EXPECT_NE(report_text.find("trace:"), std::string::npos) << report_text;
  EXPECT_NE(report_text.find("submit"), std::string::npos) << report_text;

  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(ops.load(), 0u);

  // Final ADMIN metrics scrape: structurally valid, covers every layer,
  // and the per-mode granule counters reconcile with the total.
  {
    auto scrape = admin.Admin("metrics");
    ASSERT_TRUE(scrape.ok()) << scrape.status();
    ASSERT_GT(ValidatePrometheus(*scrape), 0u);

    // Transaction layer.
    EXPECT_GT(MetricValue(*scrape, "bullfrog_txn_commits"), 0.0) << *scrape;
    EXPECT_GE(MetricValue(*scrape, "bullfrog_txn_aborts"), 0.0) << *scrape;
    // Lock layer: the wait histogram is registered (zero observations is
    // fine — waits only show up under contention).
    EXPECT_NE(scrape->find("# TYPE bullfrog_lock_wait_seconds histogram"),
              std::string::npos)
        << *scrape;
    EXPECT_GE(MetricValue(*scrape, "bullfrog_lock_wait_seconds_count"), 0.0)
        << *scrape;

    // Server layer: opcode-labelled request latency histograms with the
    // traffic this test just generated.
    EXPECT_GT(MetricValue(*scrape,
                          "bullfrog_server_request_seconds_count"
                          "{opcode=\"query\"}"),
              0.0)
        << *scrape;
    EXPECT_GT(MetricValue(*scrape,
                          "bullfrog_server_request_seconds_count"
                          "{opcode=\"migrate\"}"),
              0.0)
        << *scrape;
    EXPECT_GT(MetricValue(*scrape, "bullfrog_server_requests_total"), 0.0)
        << *scrape;

    // Migration layer: lazy + background + forced granules account for
    // every migrated unit, and some were migrated each way is not
    // guaranteed — but the total must be covered exactly.
    const double total =
        MetricValue(*scrape, "bullfrog_migration_units_migrated");
    const double lazy = MetricValue(
        *scrape, "bullfrog_migration_units_migrated{mode=\"lazy\"}");
    const double background = MetricValue(
        *scrape, "bullfrog_migration_units_migrated{mode=\"background\"}");
    const double forced = MetricValue(
        *scrape, "bullfrog_migration_units_migrated{mode=\"forced\"}");
    EXPECT_GT(total, 0.0) << *scrape;
    ASSERT_GE(lazy, 0.0) << *scrape;
    ASSERT_GE(background, 0.0) << *scrape;
    ASSERT_GE(forced, 0.0) << *scrape;
    EXPECT_DOUBLE_EQ(lazy + background + forced, total) << *scrape;
  }

  // Every row made it across the migration.
  auto count = admin.Query("SELECT COUNT(*) AS n FROM " + new_table);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), kRows);
  // Updates kept the derived column consistent (dbl == 2 * bal).
  auto rows = admin.Query("SELECT bal, dbl FROM " + new_table);
  ASSERT_TRUE(rows.ok());
  for (const Tuple& row : rows->rows) {
    ASSERT_EQ(row[1].AsInt(), row[0].AsInt() * 2);
  }
}

TEST_F(ServerE2ETest, GracefulShutdownDrainsInFlightStatements) {
  if (external()) GTEST_SKIP() << "in-process only (controls Stop())";
  constexpr int kClients = 6;

  const std::string t = TableName("drain");
  {
    Client c = Connect();
    ASSERT_TRUE(c.Query("CREATE TABLE " + t + " (id INT PRIMARY KEY)").ok());
  }

  // Each client inserts monotonically increasing unique keys and records
  // the highest key the server *acknowledged*.
  std::vector<std::thread> clients;
  std::vector<std::vector<int>> acked(kClients);
  std::atomic<bool> go{false};
  for (int w = 0; w < kClients; ++w) {
    clients.emplace_back([&, w] {
      Client c;
      if (!c.Connect(addr_).ok()) return;
      while (!go.load(std::memory_order_acquire)) Clock::SleepMicros(50);
      for (int i = 0;; ++i) {
        const int key = w * 1000000 + i;
        auto r = c.Query("INSERT INTO " + t + " VALUES (" +
                         std::to_string(key) + ")");
        if (r.ok()) {
          acked[static_cast<size_t>(w)].push_back(key);
          continue;
        }
        if (r.status().IsRetryable()) continue;
        return;  // Unavailable / busy: server is gone, stop cleanly.
      }
    });
  }
  go.store(true, std::memory_order_release);
  Clock::SleepMillis(150);  // Let traffic build up, then pull the plug.
  server_->Stop();
  for (std::thread& th : clients) th.join();

  // Drain guarantee: every acknowledged insert is durably present (read
  // via the embedded database; the server is down).
  sql::SqlEngine engine(db_.get());
  auto rows = engine.Execute("SELECT id FROM " + t);
  ASSERT_TRUE(rows.ok());
  std::vector<int64_t> present;
  present.reserve(rows->rows.size());
  for (const Tuple& row : rows->rows) present.push_back(row[0].AsInt());
  std::sort(present.begin(), present.end());
  size_t total_acked = 0;
  for (const auto& keys : acked) {
    total_acked += keys.size();
    for (int key : keys) {
      ASSERT_TRUE(std::binary_search(present.begin(), present.end(),
                                     static_cast<int64_t>(key)))
          << "acknowledged insert " << key << " missing after shutdown";
    }
  }
  EXPECT_GT(total_acked, 0u) << "no statement was in flight during Stop()";
}

TEST_F(ServerE2ETest, QueueFullGetsPoliteBusyResponse) {
  if (external()) GTEST_SKIP() << "in-process only (needs tiny pool)";
  Database db;
  ServerConfig config;
  config.workers = 1;
  config.session_queue_capacity = 1;
  Server tiny(&db, config);
  ASSERT_TRUE(tiny.Start().ok());
  const std::string addr = "127.0.0.1:" + std::to_string(tiny.port());

  Client held;
  ASSERT_TRUE(held.Connect(addr).ok());
  ASSERT_TRUE(held.Ping().ok());  // The lone worker now owns this session.

  Client queued;
  ASSERT_TRUE(queued.Connect(addr).ok());  // Sits in the session queue.

  // Third connection overflows the queue: the server answers kBusy
  // instead of silently dropping it.
  Client rejected;
  ASSERT_TRUE(rejected.Connect(addr).ok());
  Status s = rejected.Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.code() == StatusCode::kBusy || s.IsUnavailable()) << s;

  // The held session keeps working the whole time.
  EXPECT_TRUE(held.Ping().ok());
  tiny.Stop();
}

TEST_F(ServerE2ETest, IdleSessionsAreDisconnected) {
  if (external()) GTEST_SKIP() << "in-process only (needs short timeout)";
  Database db;
  ServerConfig config;
  config.workers = 2;
  config.idle_timeout_ms = 150;
  Server quick(&db, config);
  ASSERT_TRUE(quick.Start().ok());

  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", quick.port()).ok());
  ASSERT_TRUE(c.Ping().ok());
  Clock::SleepMillis(600);
  Status s = c.Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.code() == StatusCode::kTimedOut || s.IsUnavailable()) << s;
  EXPECT_GE(quick.counters().idle_disconnects, 1u);
  quick.Stop();
}

}  // namespace
}  // namespace bullfrog::server
