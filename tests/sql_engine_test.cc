#include <gtest/gtest.h>

#include "common/clock.h"
#include "sql/engine.h"

namespace bullfrog::sql {
namespace {

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<SqlEngine>(&db_);
    Exec("CREATE TABLE users (id INT PRIMARY KEY, name TEXT, age INT)");
    Exec("INSERT INTO users VALUES (1, 'ada', 36), (2, 'bob', 41), "
         "(3, 'cyd', 28)");
  }

  SqlEngine::QueryResult Exec(const std::string& sql) {
    auto result = engine_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(*result) : SqlEngine::QueryResult{};
  }

  Database db_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(SqlEngineTest, SelectStar) {
  auto r = Exec("SELECT * FROM users");
  EXPECT_EQ(r.columns,
            (std::vector<std::string>{"id", "name", "age"}));
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SqlEngineTest, SelectWithPredicateAndProjection) {
  auto r = Exec("SELECT name FROM users WHERE age > 30");
  EXPECT_EQ(r.columns, std::vector<std::string>{"name"});
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlEngineTest, SelectExpressionItems) {
  auto r = Exec("SELECT id, age * 2 AS dbl FROM users WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 72);
}

TEST_F(SqlEngineTest, SelectQualifiedColumns) {
  auto r = Exec("SELECT users.name FROM users WHERE users.id = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
}

TEST_F(SqlEngineTest, WholeSetAggregates) {
  auto r = Exec(
      "SELECT COUNT(*) AS n, SUM(age) AS total, AVG(age) AS mean, "
      "MIN(age) AS lo, MAX(age) AS hi FROM users");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 105.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 35.0);
  EXPECT_EQ(r.rows[0][3].AsInt(), 28);
  EXPECT_EQ(r.rows[0][4].AsInt(), 41);
}

TEST_F(SqlEngineTest, InsertUpdateDelete) {
  auto ins = Exec("INSERT INTO users (id, name, age) VALUES (4, 'dee', 50)");
  EXPECT_EQ(ins.affected, 1u);
  auto up = Exec("UPDATE users SET age = age + 1 WHERE name = 'dee'");
  EXPECT_EQ(up.affected, 1u);
  auto sel = Exec("SELECT age FROM users WHERE id = 4");
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0].AsInt(), 51);
  auto del = Exec("DELETE FROM users WHERE id = 4");
  EXPECT_EQ(del.affected, 1u);
  EXPECT_EQ(Exec("SELECT * FROM users").rows.size(), 3u);
}

TEST_F(SqlEngineTest, InsertPartialColumnsNullRest) {
  Exec("CREATE TABLE partial (a INT PRIMARY KEY, b TEXT, c INT)");
  Exec("INSERT INTO partial (a) VALUES (1)");
  auto r = Exec("SELECT * FROM partial");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(SqlEngineTest, DuplicatePkRejected) {
  auto r = engine_->Execute("INSERT INTO users VALUES (1, 'dup', 1)");
  EXPECT_TRUE(r.status().IsAlreadyExists());
  // The failed autocommit statement must not leave partial state.
  EXPECT_EQ(Exec("SELECT * FROM users").rows.size(), 3u);
}

TEST_F(SqlEngineTest, MultiRowInsertIsAtomic) {
  auto r = engine_->Execute(
      "INSERT INTO users VALUES (10, 'x', 1), (1, 'dup', 2)");
  EXPECT_FALSE(r.ok());
  // Row 10 was rolled back with the failing statement.
  EXPECT_EQ(Exec("SELECT * FROM users WHERE id = 10").rows.size(), 0u);
}

TEST_F(SqlEngineTest, ExplicitTransactionCommitAndRollback) {
  Exec("BEGIN");
  Exec("INSERT INTO users VALUES (5, 'eve', 30)");
  Exec("COMMIT");
  EXPECT_EQ(Exec("SELECT * FROM users WHERE id = 5").rows.size(), 1u);

  Exec("BEGIN");
  Exec("INSERT INTO users VALUES (6, 'fay', 31)");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT * FROM users WHERE id = 6").rows.size(), 0u);
}

TEST_F(SqlEngineTest, TransactionStateErrors) {
  EXPECT_FALSE(engine_->Execute("COMMIT").ok());
  EXPECT_FALSE(engine_->Execute("ROLLBACK").ok());
  Exec("BEGIN");
  EXPECT_FALSE(engine_->Execute("BEGIN").ok());
  Exec("ROLLBACK");
}

TEST_F(SqlEngineTest, CreateIndexViaSql) {
  auto r = engine_->Execute("CREATE INDEX users_by_name ON users (name)");
  EXPECT_TRUE(r.ok());
  EXPECT_NE(db_.catalog().FindTable("users")->FindIndex("users_by_name"),
            nullptr);
}

TEST_F(SqlEngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(engine_->Execute("SELECT * FROM missing").ok());
  EXPECT_FALSE(engine_->Execute("SELECT bogus FROM users").ok());
  EXPECT_FALSE(engine_->Execute("INSERT INTO users VALUES (id, 'x', 1)").ok());
  EXPECT_FALSE(
      engine_->Execute("SELECT nope.name FROM users").ok());
}

/// End-to-end migrations written in the paper's SQL DDL.
class SqlMigrationTest : public SqlEngineTest {
 protected:
  MigrationController::SubmitOptions LazyOpts(bool background = true) {
    MigrationController::SubmitOptions opts;
    opts.strategy = MigrationStrategy::kLazy;
    opts.enable_background = background;
    opts.lazy.background_start_delay_ms = 20;
    opts.lazy.background_pause_us = 0;
    return opts;
  }

  void WaitComplete() {
    Stopwatch sw;
    while (!db_.controller().IsComplete() && sw.ElapsedMillis() < 10000) {
      Clock::SleepMillis(5);
    }
    ASSERT_TRUE(db_.controller().IsComplete());
  }
};

TEST_F(SqlMigrationTest, ProjectionMigration) {
  // Add a derived column + drop a column, in one step.
  Status s = engine_->SubmitMigrationScript(
      "CREATE TABLE users_v2 PRIMARY KEY (id) AS "
      "  SELECT id, age, age / 2 AS half_age FROM users; "
      "DROP TABLE users;",
      LazyOpts());
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Old schema rejected, new queryable immediately.
  EXPECT_FALSE(engine_->Execute("SELECT * FROM users").ok());
  auto r = Exec("SELECT half_age FROM users_v2 WHERE id = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 20.5);
  WaitComplete();
  EXPECT_EQ(Exec("SELECT * FROM users_v2").rows.size(), 3u);
}

TEST_F(SqlMigrationTest, FilteredMigrationDropsNonMatching) {
  Status s = engine_->SubmitMigrationScript(
      "CREATE TABLE adults PRIMARY KEY (id) AS "
      "  SELECT id, name FROM users WHERE age >= 30; "
      "DROP TABLE users;",
      LazyOpts());
  ASSERT_TRUE(s.ok()) << s.ToString();
  WaitComplete();
  EXPECT_EQ(Exec("SELECT * FROM adults").rows.size(), 2u);
}

TEST_F(SqlMigrationTest, AggregateMigration) {
  Exec("CREATE TABLE sales (region TEXT, amount DOUBLE)");
  Exec("INSERT INTO sales VALUES ('east', 10.0), ('east', 5.0), "
       "('west', 2.0)");
  Status s = engine_->SubmitMigrationScript(
      "CREATE TABLE region_totals PRIMARY KEY (region) AS "
      "  SELECT region, SUM(amount) AS total, COUNT(*) AS n "
      "  FROM sales GROUP BY region;",
      LazyOpts(false));
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Lazy: the 'east' group migrates on first touch.
  auto r = Exec("SELECT total, n FROM region_totals WHERE region = 'east'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 15.0);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  // sales stays active (not dropped): additive evolution like §4.2.
  EXPECT_TRUE(engine_->Execute("SELECT * FROM sales").ok());
}

TEST_F(SqlMigrationTest, JoinMigrationFlightExample) {
  // The paper's §2.1 example, almost verbatim.
  Exec("CREATE TABLE flights (flightid CHAR(6) PRIMARY KEY, source CHAR(3),"
       " dest CHAR(3), departure_time TIMESTAMP, arrival_time TIMESTAMP,"
       " capacity INT)");
  Exec("CREATE TABLE flewon (flightid CHAR(6), flightdate INT,"
       " passenger_count INT)");
  Exec("CREATE INDEX flewon_flightid_idx ON flewon (flightid)");
  Exec("INSERT INTO flights VALUES ('AA101', 'JFK', 'LAX', 1, 2, 180),"
       " ('AA102', 'JFK', 'SFO', 3, 4, 150)");
  Exec("INSERT INTO flewon VALUES ('AA101', 9, 170), ('AA101', 10, 20),"
       " ('AA102', 9, 150)");

  Status s = engine_->SubmitMigrationScript(
      "CREATE TABLE flewoninfo PRIMARY KEY (fid, flightdate) AS ("
      "  SELECT f.flightid AS fid, flightdate, passenger_count,"
      "         capacity - passenger_count AS empty_seats,"
      "         departure_time AS expected_departure_time,"
      "         CAST(NULL AS TIMESTAMP) AS actual_departure_time,"
      "         arrival_time AS expected_arrival_time,"
      "         CAST(NULL AS TIMESTAMP) AS actual_arrival_time"
      "  FROM flights f, flewon fi"
      "  WHERE f.flightid = fi.flightid);"
      "DROP TABLE flights; DROP TABLE flewon;",
      LazyOpts(false));
  ASSERT_TRUE(s.ok()) << s.ToString();

  // The paper's client request: only AA101's tuples migrate.
  auto r = Exec(
      "SELECT * FROM flewoninfo WHERE fid = 'AA101' AND flightdate = 9");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][2].AsInt(), 170);   // passenger_count.
  EXPECT_EQ(r.rows[0][3].AsInt(), 10);    // empty_seats = 180 - 170.
  EXPECT_TRUE(r.rows[0][5].is_null());    // actual_departure_time.
  EXPECT_EQ(db_.catalog().FindTable("flewoninfo")->NumLiveRows(), 2u)
      << "only the AA101 join-key class should have migrated";

  // Backwards-incompatible write: zero passengers is now legal.
  Exec("INSERT INTO flewoninfo VALUES ('AA102', 11, 0, 150, 3, NULL, 4, "
       "NULL)");
  auto cargo = Exec(
      "SELECT passenger_count FROM flewoninfo WHERE flightdate = 11");
  ASSERT_EQ(cargo.rows.size(), 1u);
  EXPECT_EQ(cargo.rows[0][0].AsInt(), 0);
}

TEST_F(SqlMigrationTest, CompilerErrors) {
  auto opts = LazyOpts(false);
  // Plain DML is not migration DDL.
  EXPECT_FALSE(engine_->SubmitMigrationScript(
                          "INSERT INTO users VALUES (9, 'x', 1);", opts)
                   .ok());
  // NULL literal without CAST.
  EXPECT_FALSE(engine_->SubmitMigrationScript(
                          "CREATE TABLE u2 PRIMARY KEY (id) AS SELECT id, "
                          "NULL AS mystery FROM users;",
                          opts)
                   .ok());
  // Join without a join condition.
  EXPECT_FALSE(
      engine_->SubmitMigrationScript(
                  "CREATE TABLE x AS SELECT users.id FROM users, users;",
                  opts)
          .ok());
  // Aggregate without GROUP BY.
  EXPECT_FALSE(engine_->SubmitMigrationScript(
                          "CREATE TABLE t AS SELECT SUM(age) AS s FROM "
                          "users;",
                          opts)
                   .ok());
  // Non-group column in an aggregate select.
  EXPECT_FALSE(engine_->SubmitMigrationScript(
                          "CREATE TABLE t AS SELECT name, SUM(age) AS s "
                          "FROM users GROUP BY age;",
                          opts)
                   .ok());
}

// Error paths the network server leans on: every malformed input must
// come back as a clean non-OK Status (never a crash), and the engine
// session must remain usable for the next statement.
TEST_F(SqlEngineTest, MalformedStatementsFailCleanly) {
  const char* bad[] = {
      "",
      "   ",
      "SELEKT * FROM users",
      "SELECT FROM users",
      "SELECT * FROM",
      "INSERT INTO users",
      "INSERT INTO users VALUES (1, 'x'",
      "UPDATE users SET",
      "DELETE users WHERE id = 1",
      "CREATE TABLE (id INT PRIMARY KEY)",
      "SELECT * FROM users WHERE",
      "SELECT * FROM users; SELECT * FROM users",
  };
  for (const char* sql : bad) {
    auto r = engine_->Execute(sql);
    EXPECT_FALSE(r.ok()) << "'" << sql << "' unexpectedly succeeded";
    EXPECT_FALSE(r.status().message().empty()) << sql;
  }
  // Session still fully usable afterwards.
  auto r = Exec("SELECT COUNT(*) AS n FROM users");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(SqlEngineTest, UnknownTableAndColumnFailCleanly) {
  EXPECT_TRUE(engine_->Execute("SELECT * FROM ghosts").status().IsNotFound());
  EXPECT_TRUE(
      engine_->Execute("INSERT INTO ghosts VALUES (1)").status().IsNotFound());
  EXPECT_FALSE(engine_->Execute("SELECT haunted FROM users").ok());
  EXPECT_FALSE(
      engine_->Execute("UPDATE users SET haunted = 1 WHERE id = 1").ok());
  Exec("SELECT * FROM users");  // Session survives.
}

TEST_F(SqlEngineTest, DroppedTableQueriesFailCleanly) {
  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kEager;
  ASSERT_TRUE(engine_
                  ->SubmitMigrationScript(
                      "CREATE TABLE users2 PRIMARY KEY (id) AS "
                      "SELECT id, name, age FROM users;\n"
                      "DROP TABLE users;",
                      opts)
                  .ok());
  // The retired table is gone from the logical schema immediately.
  auto r = engine_->Execute("SELECT * FROM users");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(engine_->Execute("INSERT INTO users VALUES (9, 'x', 1)").ok());
  // The new table works on the same session.
  Stopwatch waited;
  while (db_.controller().Progress() < 1.0) {
    ASSERT_LT(waited.ElapsedSeconds(), 30.0);
    Clock::SleepMillis(5);
  }
  auto ok = Exec("SELECT COUNT(*) AS n FROM users2");
  EXPECT_EQ(ok.rows[0][0].AsInt(), 3);
}

TEST_F(SqlEngineTest, OversizedStringValuesRejected) {
  const std::string big(SqlEngine::kMaxStringValueBytes + 1, 'x');
  auto ins = engine_->Execute("INSERT INTO users VALUES (9, '" + big + "', 1)");
  EXPECT_EQ(ins.status().code(), StatusCode::kInvalidArgument)
      << ins.status();
  auto upd =
      engine_->Execute("UPDATE users SET name = '" + big + "' WHERE id = 1");
  EXPECT_EQ(upd.status().code(), StatusCode::kInvalidArgument)
      << upd.status();
  // Nothing was applied and the session still works.
  auto r = Exec("SELECT COUNT(*) AS n FROM users");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  auto name = Exec("SELECT name FROM users WHERE id = 1");
  EXPECT_EQ(name.rows[0][0].AsString(), "ada");
  // A string exactly at the cap is accepted.
  const std::string fits(SqlEngine::kMaxStringValueBytes, 'y');
  auto ok = engine_->Execute("INSERT INTO users VALUES (9, '" + fits + "', 1)");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

}  // namespace
}  // namespace bullfrog::sql
