// Stress tests for MigrationController state lifetime under concurrency.
//
// The scenario that used to be a use-after-free: worker threads in the
// middle of PrepareRead / PrepareInsert / Progress / timeline while a
// driver thread submits the *next* migration, which tears down and
// replaces the controller's per-migration state. With the shared-pointer
// snapshot scheme every reader keeps the state it started with alive;
// ThreadSanitizer (BULLFROG_SANITIZE=thread) verifies there is no window
// left.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "migration/controller.h"
#include "query/expr.h"
#include "txn/txn_manager.h"

namespace bullfrog {
namespace {

constexpr int kRows = 64;

std::string SrcName(int round) { return "src_" + std::to_string(round); }
std::string DstName(int round) { return "dst_" + std::to_string(round); }

/// 1:1 copy plan src_<round> -> dst_<round>.
MigrationPlan CopyPlan(int round) {
  MigrationPlan plan;
  plan.name = "copy_" + std::to_string(round);
  plan.new_tables = {SchemaBuilder(DstName(round))
                         .AddColumn("id", ValueType::kInt64, false)
                         .AddColumn("v", ValueType::kInt64)
                         .SetPrimaryKey({"id"})
                         .Build()};
  plan.retire_tables = {SrcName(round)};
  MigrationStatement stmt;
  stmt.name = plan.name;
  stmt.category = MigrationCategory::kOneToOne;
  stmt.input_tables = {SrcName(round)};
  stmt.output_tables = {DstName(round)};
  stmt.provenance.AddPassThrough("id", SrcName(round), "id");
  stmt.provenance.AddPassThrough("v", SrcName(round), "v");
  stmt.row_transform =
      [](const Tuple& in) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{0, in}};
  };
  plan.statements.push_back(std::move(stmt));
  return plan;
}

void LoadSource(Catalog* catalog, int round) {
  auto src = catalog->CreateTable(SchemaBuilder(SrcName(round))
                                      .AddColumn("id", ValueType::kInt64,
                                                 false)
                                      .AddColumn("v", ValueType::kInt64)
                                      .SetPrimaryKey({"id"})
                                      .Build());
  ASSERT_TRUE(src.ok());
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE(
        (*src)->Insert(Tuple{Value::Int(i), Value::Int(i)}).ok());
  }
}

MigrationController::SubmitOptions FastLazyOpts() {
  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.enable_background = true;
  opts.lazy.background_start_delay_ms = 0;
  opts.lazy.background_pause_us = 0;
  opts.lazy.background_threads = 2;
  return opts;
}

void WaitComplete(MigrationController* controller) {
  Stopwatch sw;
  while (!controller->IsComplete() && sw.ElapsedMillis() < 60000) {
    Clock::SleepMillis(1);
  }
  ASSERT_TRUE(controller->IsComplete());
}

/// N worker threads hammer every reader entry point while the driver
/// repeatedly submits lazy migrations, waits for completion, and submits
/// the next one (destroying the previous migration's state each time).
TEST(ControllerRaceTest, ReadersSurviveRepeatedSubmits) {
  Catalog catalog;
  TransactionManager txns;
  MigrationController controller(&catalog, &txns);

  constexpr int kRounds = 10;
  constexpr int kReaders = 4;

  std::atomic<bool> done{false};
  std::atomic<int> round{-1};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t rng = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(r + 1);
      while (!done.load(std::memory_order_acquire)) {
        const int cur = round.load(std::memory_order_acquire);
        if (cur < 0) {
          std::this_thread::yield();
          continue;
        }
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto key = static_cast<int64_t>(rng % kRows);
        const std::string dst = DstName(cur);
        // Statuses are intentionally ignored: a reader may race the end
        // of a round (table gone, migration complete) — the point is
        // that no call touches freed state.
        (void)controller.PrepareRead(dst, Eq(Col("id"), LitInt(key)));
        (void)controller.PrepareInsert(
            dst, Tuple{Value::Int(key + kRows), Value::Int(0)});
        (void)controller.Progress();
        (void)controller.timeline();
        (void)controller.IsComplete();
        (void)controller.MultiStepActive();
        (void)controller.UsesNewSchema();
        { auto guard = controller.MultiStepWriteGuard(); }
        (void)controller.migrators();
        (void)controller.FindMigratorForOutput(dst);
        (void)controller.background_error();
      }
    });
  }

  for (int i = 0; i < kRounds; ++i) {
    LoadSource(&catalog, i);
    round.store(i, std::memory_order_release);
    ASSERT_TRUE(controller.Submit(CopyPlan(i), FastLazyOpts()).ok());
    WaitComplete(&controller);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Every round's data landed in full.
  for (int i = 0; i < kRounds; ++i) {
    Table* t = catalog.FindTable(DstName(i));
    ASSERT_NE(t, nullptr) << DstName(i);
    EXPECT_EQ(t->NumLiveRows(), static_cast<uint64_t>(kRows)) << DstName(i);
  }
  EXPECT_TRUE(controller.background_error().ok());
}

/// RecoverFromRedoLog republishes a brand-new state (fresh trackers and
/// migrators) while readers hold and use the old snapshot.
TEST(ControllerRaceTest, RecoveryRepublishesUnderReaders) {
  Catalog catalog;
  TransactionManager txns;
  MigrationController controller(&catalog, &txns);

  LoadSource(&catalog, 0);

  auto opts = FastLazyOpts();
  // Give client-side PrepareRead traffic a head start over background.
  opts.lazy.background_start_delay_ms = 5;
  ASSERT_TRUE(controller.Submit(CopyPlan(0), opts).ok());

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      uint64_t rng = 0xdeadbeefULL + static_cast<uint64_t>(r);
      while (!done.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto key = static_cast<int64_t>(rng % kRows);
        (void)controller.PrepareRead(DstName(0),
                                     Eq(Col("id"), LitInt(key)));
        (void)controller.Progress();
        (void)controller.timeline();
        (void)controller.migrators();
      }
    });
  }

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(controller.RecoverFromRedoLog().ok());
    Clock::SleepMillis(2);
  }
  WaitComplete(&controller);
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  Table* t = catalog.FindTable(DstName(0));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->NumLiveRows(), static_cast<uint64_t>(kRows));
}

/// Concurrent Submits: exactly one wins per round; the rest observe
/// kBusy, never a torn state.
TEST(ControllerRaceTest, ConcurrentSubmitsSingleWinner) {
  Catalog catalog;
  TransactionManager txns;
  MigrationController controller(&catalog, &txns);

  constexpr int kRounds = 6;
  for (int i = 0; i < kRounds; ++i) {
    LoadSource(&catalog, i);
    std::atomic<int> winners{0};
    std::atomic<int> busy{0};
    std::vector<std::thread> submitters;
    for (int s = 0; s < 3; ++s) {
      submitters.emplace_back([&, i] {
        Status st = controller.Submit(CopyPlan(i), FastLazyOpts());
        if (st.ok()) {
          winners.fetch_add(1);
        } else if (st.code() == StatusCode::kBusy ||
                   st.code() == StatusCode::kAlreadyExists) {
          // kAlreadyExists: a loser that started after the winner
          // completed the whole (tiny) migration and already dropped
          // state visibility; its CreateOutputTables then collides.
          busy.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected submit status: " << st.ToString();
        }
      });
    }
    for (auto& t : submitters) t.join();
    EXPECT_EQ(winners.load(), 1) << "round " << i;
    EXPECT_EQ(busy.load(), 2) << "round " << i;
    WaitComplete(&controller);
  }
}

}  // namespace
}  // namespace bullfrog
