// Unit tests for request tracing (src/obs/request_trace.h) and the
// timeseries sampler, plus engine-level integration: span trees, stage
// attribution, thread-local propagation, the profile/slowlog stores, and
// the migrate-pull first-touch/warm-read contract through a real lazy
// migration.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "obs/request_trace.h"
#include "obs/timeseries.h"
#include "sql/engine.h"

namespace bullfrog {
namespace {

using obs::ProfileStore;
using obs::ScopedSpan;
using obs::Stage;
using obs::TraceBinding;
using obs::TraceContext;
using obs::TraceSampler;

TEST(TraceContextTest, StageAccumulationSeparatesTimeAndCount) {
  TraceContext t(42, "SELECT 1");
  t.AddStage(Stage::kMigratePull, 0, 7);       // Count-only (migrator).
  t.AddStage(Stage::kMigratePull, 1000000, 0); // Time-only (clock owner).
  t.AddStage(Stage::kLockWait, 500, 1);
  EXPECT_EQ(t.StageCount(Stage::kMigratePull), 7u);
  EXPECT_EQ(t.StageNanos(Stage::kMigratePull), 1000000);
  EXPECT_EQ(t.StageCount(Stage::kLockWait), 1u);
  EXPECT_EQ(t.StageNanos(Stage::kWalSync), 0);
}

TEST(TraceContextTest, FinishIsIdempotentAndTotalIsLiveBefore) {
  TraceContext t(1);
  EXPECT_FALSE(t.finished());
  const int64_t live = t.total_ns();
  EXPECT_GE(live, 0);
  t.Finish();
  ASSERT_TRUE(t.finished());
  const int64_t total = t.total_ns();
  Clock::SleepMillis(5);
  t.Finish();  // No-op.
  EXPECT_EQ(t.total_ns(), total);
}

TEST(TraceContextTest, RenderShowsIdStagesAndIndentedSpans) {
  TraceContext t(0xabcdef, "SELECT * FROM frogs");
  const int64_t base = t.start_ns();
  t.RecordSpan("execute", base, 4000000, "", 1);
  t.RecordSpan("migrate_pull", base + 1000000, 2000000,
               "table=frogs units=3", 2);
  t.AddStage(Stage::kMigratePull, 2000000, 3);
  t.Finish();
  const std::string out = t.Render();
  EXPECT_NE(out.find("trace id=0x0000000000abcdef"), std::string::npos) << out;
  EXPECT_NE(out.find("sql=\"SELECT * FROM frogs\""), std::string::npos) << out;
  EXPECT_NE(out.find("migrate_pull=2.000ms(3)"), std::string::npos) << out;
  // Children are indented twice the depth.
  EXPECT_NE(out.find("\n  [+"), std::string::npos) << out;
  EXPECT_NE(out.find("\n    [+"), std::string::npos) << out;
  EXPECT_NE(out.find("table=frogs units=3"), std::string::npos) << out;
}

TEST(TraceContextTest, AccountedNanosSumsOnlyDepthOneSpans) {
  TraceContext t(5);
  const int64_t base = t.start_ns();
  t.RecordSpan("a", base, 100, "", 1);
  t.RecordSpan("b", base + 100, 200, "", 1);
  t.RecordSpan("a.child", base + 10, 50, "", 2);  // Not double counted.
  EXPECT_EQ(t.AccountedNanos(), 300);
}

TEST(ScopedSpanTest, NoOpWithoutBindingRecordsWithBinding) {
  {
    ScopedSpan span("orphan", Stage::kExecute);  // No trace bound: no-op.
    EXPECT_FALSE(span.active());
  }
  TraceContext t(7);
  {
    TraceBinding bind(&t);
    EXPECT_EQ(obs::CurrentTrace(), &t);
    ScopedSpan outer("outer", Stage::kExecute);
    EXPECT_TRUE(outer.active());
    {
      ScopedSpan inner("inner");
      Clock::SleepMicros(200);
    }
  }
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
  t.Finish();
  EXPECT_GT(t.StageNanos(Stage::kExecute), 0);
  EXPECT_EQ(t.StageCount(Stage::kExecute), 1u);
  const std::string out = t.Render();
  EXPECT_NE(out.find("] outer"), std::string::npos) << out;
  EXPECT_NE(out.find("] inner"), std::string::npos) << out;
  // AccountedNanos == the single depth-1 span.
  EXPECT_EQ(t.AccountedNanos(), t.StageNanos(Stage::kExecute));
}

TEST(ScopedSpanTest, CrossThreadFanOutAccumulatesIntoOneTrace) {
  TraceContext t(9);
  std::vector<std::thread> workers;
  {
    TraceBinding bind(&t);
    ScopedSpan fanout("fanout", Stage::kShardWait);
    const int depth = obs::CurrentTraceDepth();
    for (int i = 0; i < 4; ++i) {
      workers.emplace_back([&t, depth, i] {
        TraceBinding worker_bind(&t, depth + 1);
        ScopedSpan shard("shard");
        shard.SetDetail("shard=" + std::to_string(i));
        t.AddStage(Stage::kMigratePull, 0, 1);
        Clock::SleepMicros(100);
      });
    }
    for (auto& w : workers) w.join();
  }
  t.Finish();
  EXPECT_EQ(t.StageCount(Stage::kMigratePull), 4u);
  const std::string out = t.Render();
  EXPECT_NE(out.find("] fanout"), std::string::npos) << out;
  EXPECT_NE(out.find("shard=0"), std::string::npos) << out;
  EXPECT_NE(out.find("shard=3"), std::string::npos) << out;
}

TEST(TraceSamplerTest, EverySemantics) {
  TraceSampler off(0);
  EXPECT_FALSE(off.Sample());
  TraceSampler always(1);
  EXPECT_TRUE(always.Sample());
  EXPECT_TRUE(always.Sample());
  TraceSampler third(3);
  int hits = 0;
  for (int i = 0; i < 9; ++i) {
    if (third.Sample()) ++hits;
  }
  EXPECT_EQ(hits, 3);
}

TEST(TraceSamplerTest, NextTraceIdIsUniqueAndNonZero) {
  uint64_t a = TraceSampler::NextTraceId();
  uint64_t b = TraceSampler::NextTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

std::shared_ptr<const TraceContext> MakeFinished(uint64_t id, int64_t busy_us,
                                                 const std::string& sql) {
  auto t = std::make_shared<TraceContext>(id, sql);
  t->AddStage(Stage::kExecute, busy_us * 1000, 1);
  Clock::SleepMicros(busy_us);
  t->Finish();
  return t;
}

TEST(ProfileStoreTest, SlowlogKeepsKSlowestInOrder) {
  ProfileStore store(/*recent_capacity=*/4, /*slow_k=*/2);
  store.Record(MakeFinished(1, 100, "fast"));
  store.Record(MakeFinished(2, 5000, "slowest"));
  store.Record(MakeFinished(3, 2000, "second"));
  store.Record(MakeFinished(4, 50, "fastest"));
  const std::string slowlog = store.RenderSlowlog();
  const size_t slowest = slowlog.find("slowest");
  const size_t second = slowlog.find("second");
  EXPECT_NE(slowest, std::string::npos) << slowlog;
  EXPECT_NE(second, std::string::npos) << slowlog;
  EXPECT_LT(slowest, second) << slowlog;  // Descending by total.
  EXPECT_EQ(slowlog.find("fast\n"), std::string::npos) << slowlog;
  EXPECT_EQ(slowlog.find("fastest"), std::string::npos) << slowlog;
}

TEST(ProfileStoreTest, RecentRingIsBoundedAndSearchableById) {
  ProfileStore store(/*recent_capacity=*/3, /*slow_k=*/1);
  for (uint64_t id = 1; id <= 5; ++id) {
    // Strictly increasing durations: the single slowlog slot always holds
    // the latest trace, so id 1 is evicted from both structures.
    store.Record(MakeFinished(id, 50 * static_cast<int64_t>(id),
                              "q" + std::to_string(id)));
  }
  EXPECT_EQ(store.recent_size(), 3u);
  // Newest without an id.
  EXPECT_NE(store.RenderProfile().find("q5"), std::string::npos);
  // Specific id still in the ring.
  EXPECT_NE(store.RenderProfile(4).find("q4"), std::string::npos);
  // Evicted from recents and not slow enough for the slowlog.
  EXPECT_NE(store.RenderProfile(1).find("no trace with id"),
            std::string::npos);
  EXPECT_NE(store.RenderProfile(999).find("no trace with id"),
            std::string::npos);
}

TEST(ProfileStoreTest, EmptyStoreRenders) {
  ProfileStore store(4, 4);
  EXPECT_EQ(store.RenderProfile(), "no traces recorded\n");
  EXPECT_EQ(store.RenderSlowlog(), "slowlog empty\n");
}

TEST(ProfileStoreTest, AggregatesAccumulateAcrossAllRecords) {
  ProfileStore store(/*recent_capacity=*/1, /*slow_k=*/1);
  for (uint64_t id = 1; id <= 10; ++id) {
    auto t = std::make_shared<TraceContext>(id);
    t->AddStage(Stage::kWalSync, 1000, 1);
    t->Finish();
    store.Record(std::move(t));
  }
  // Rings are bounded at 1, but the aggregates saw all 10.
  EXPECT_EQ(store.aggregate_requests(), 10u);
  EXPECT_EQ(store.AggregateStageNanos(Stage::kWalSync), 10000);
  EXPECT_EQ(store.AggregateStageCount(Stage::kWalSync), 10u);
  EXPECT_GT(store.aggregate_total_ns(), 0);
  const std::string attribution = store.RenderAttribution("# ");
  EXPECT_NE(attribution.find("# attribution requests=10"), std::string::npos)
      << attribution;
  EXPECT_NE(attribution.find("stage=wal_sync"), std::string::npos)
      << attribution;
}

TEST(TimeseriesSamplerTest, SamplesSourcesIntoBoundedRing) {
  obs::TimeseriesSampler sampler(/*interval_ms=*/5, /*capacity=*/4);
  std::atomic<int64_t> ticks{0};
  sampler.AddSource("ticks", [&] {
    return static_cast<double>(ticks.fetch_add(1) + 1);
  });
  sampler.Start();
  Clock::SleepMillis(80);
  sampler.Stop();
  const std::string out = sampler.Render();
  EXPECT_NE(out.find("# timeseries interval_ms=5"), std::string::npos) << out;
  EXPECT_NE(out.find("t_ms ticks"), std::string::npos) << out;
  // Bounded: at most 4 rows survive even though ~16 sampling periods ran.
  size_t rows = 0;
  for (size_t pos = out.find('\n'); pos != std::string::npos;
       pos = out.find('\n', pos + 1)) {
    ++rows;
  }
  EXPECT_LE(rows, 2u + 4u) << out;  // Header + column line + <=4 rows.
  EXPECT_GT(ticks.load(), 4);       // It really kept sampling.
}

TEST(TimeseriesSamplerTest, StartWithoutSourcesIsANoOp) {
  obs::TimeseriesSampler sampler(5, 4);
  sampler.Start();  // No sources: must not spawn/crash.
  sampler.Stop();
  EXPECT_NE(sampler.Render().find("rows=0"), std::string::npos);
}

// --- Engine integration: the migrate-pull attribution contract. ---

class TraceEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<sql::SqlEngine>(&db_);
    db_.trace_sampler().set_every(1);
    ASSERT_TRUE(
        engine_->Execute("CREATE TABLE accts (id INT PRIMARY KEY, bal INT)")
            .ok());
    std::string sql = "INSERT INTO accts VALUES ";
    for (int i = 0; i < 400; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
    }
    ASSERT_TRUE(engine_->Execute(sql).ok());
  }

  /// The newest recorded trace's render.
  std::string LastProfile() { return db_.profiles().RenderProfile(); }

  Database db_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

TEST_F(TraceEngineTest, StatementTraceHasParseAndExecuteSpans) {
  ASSERT_TRUE(engine_->Execute("SELECT * FROM accts WHERE id = 1").ok());
  const std::string out = LastProfile();
  EXPECT_NE(out.find("] parse"), std::string::npos) << out;
  EXPECT_NE(out.find("] execute"), std::string::npos) << out;
  EXPECT_NE(out.find("sql=\"SELECT * FROM accts WHERE id = 1\""),
            std::string::npos)
      << out;
}

TEST_F(TraceEngineTest, MigratePullAttributedOnFirstTouchZeroOnWarmRead) {
  // Lazy migration, background held off so only client pulls migrate.
  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 60000;
  ASSERT_TRUE(engine_
                  ->SubmitMigrationScript(
                      "CREATE TABLE accts_v2 PRIMARY KEY (id) AS "
                      "SELECT id, bal, bal + 1 AS nxt FROM accts;\n"
                      "DROP TABLE accts;",
                      opts)
                  .ok());

  // First touch: the SELECT pulls its granules and the trace says so.
  ASSERT_TRUE(
      engine_->Execute("SELECT * FROM accts_v2 WHERE id = 123").ok());
  const std::string first = LastProfile();
  EXPECT_NE(first.find("migrate_pull"), std::string::npos) << first;
  EXPECT_NE(first.find("table=accts_v2 units="), std::string::npos) << first;

  // Warm re-read of the same row: zero pulls, no migrate_pull anywhere.
  ASSERT_TRUE(
      engine_->Execute("SELECT * FROM accts_v2 WHERE id = 123").ok());
  const std::string warm = LastProfile();
  EXPECT_NE(warm.find("sql=\"SELECT * FROM accts_v2 WHERE id = 123\""),
            std::string::npos)
      << warm;
  EXPECT_EQ(warm.find("migrate_pull"), std::string::npos) << warm;
}

TEST_F(TraceEngineTest, AccountedWithinTenPercentOfTotal) {
  ASSERT_TRUE(engine_->Execute("SELECT * FROM accts").ok());
  std::shared_ptr<const TraceContext> trace;
  {
    // Fish the trace back out via the render (the store owns it); parse
    // total_ns / accounted_ns off the machine-readable first line.
    const std::string out = LastProfile();
    const size_t tpos = out.find("total_ns=");
    const size_t apos = out.find("accounted_ns=");
    ASSERT_NE(tpos, std::string::npos) << out;
    ASSERT_NE(apos, std::string::npos) << out;
    const int64_t total = std::strtoll(out.c_str() + tpos + 9, nullptr, 10);
    const int64_t accounted =
        std::strtoll(out.c_str() + apos + 13, nullptr, 10);
    ASSERT_GT(total, 0) << out;
    // parse + execute are rooted directly under the statement, so the
    // depth-1 sum explains (nearly) all of the end-to-end time.
    EXPECT_GE(accounted, total * 9 / 10) << out;
    EXPECT_LE(accounted, total + total / 10) << out;
  }
}

TEST_F(TraceEngineTest, SamplerOffRecordsNothing) {
  const size_t before = db_.profiles().recent_size();
  db_.trace_sampler().set_every(0);
  ASSERT_TRUE(engine_->Execute("SELECT * FROM accts WHERE id = 2").ok());
  EXPECT_EQ(db_.profiles().recent_size(), before);
}

}  // namespace
}  // namespace bullfrog
