#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "storage/index.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace bullfrog {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::Timestamp(99).AsTimestamp(), 99);
  EXPECT_EQ(Value::Int(5).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Timestamp(5).type(), ValueType::kTimestamp);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Str("").Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("abc"), Value::Str("abc"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Str("hello").Hash(), Value::Str("hello").Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{Value::Int(1), Value::Str("x")};
  Tuple b{Value::Int(1), Value::Str("x")};
  Tuple c{Value::Int(2), Value::Str("x")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, ToString) {
  Tuple t{Value::Int(1), Value::Str("a")};
  EXPECT_EQ(t.ToString(), "(1, 'a')");
}

class IndexTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  std::unique_ptr<Index> Make(bool unique) {
    if (GetParam() == IndexKind::kHash) {
      return std::make_unique<HashIndex>("idx", std::vector<size_t>{0},
                                         unique);
    }
    return std::make_unique<OrderedIndex>("idx", std::vector<size_t>{0},
                                          unique);
  }
};

TEST_P(IndexTest, InsertAndLookup) {
  auto idx = Make(false);
  ASSERT_TRUE(idx->Insert(Tuple{Value::Int(1)}, 10).ok());
  ASSERT_TRUE(idx->Insert(Tuple{Value::Int(1)}, 11).ok());
  ASSERT_TRUE(idx->Insert(Tuple{Value::Int(2)}, 12).ok());
  std::vector<RowId> rids;
  idx->Lookup(Tuple{Value::Int(1)}, &rids);
  EXPECT_EQ(rids.size(), 2u);
  EXPECT_EQ(idx->size(), 3u);
}

TEST_P(IndexTest, UniqueRejectsDuplicates) {
  auto idx = Make(true);
  ASSERT_TRUE(idx->Insert(Tuple{Value::Int(1)}, 10).ok());
  EXPECT_TRUE(idx->Insert(Tuple{Value::Int(1)}, 11).IsAlreadyExists());
  // Re-inserting the same (key, rid) is idempotent.
  EXPECT_TRUE(idx->Insert(Tuple{Value::Int(1)}, 10).ok());
}

TEST_P(IndexTest, TryReserveDetectsExisting) {
  auto idx = Make(true);
  RowId existing = kInvalidRowId;
  auto first = idx->TryReserve(Tuple{Value::Int(5)}, 100, &existing);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  auto second = idx->TryReserve(Tuple{Value::Int(5)}, 200, &existing);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second);
  EXPECT_EQ(existing, 100u);
}

TEST_P(IndexTest, EraseRemovesOnlyMatchingRid) {
  auto idx = Make(false);
  ASSERT_TRUE(idx->Insert(Tuple{Value::Int(1)}, 10).ok());
  ASSERT_TRUE(idx->Insert(Tuple{Value::Int(1)}, 11).ok());
  idx->Erase(Tuple{Value::Int(1)}, 10);
  std::vector<RowId> rids;
  idx->Lookup(Tuple{Value::Int(1)}, &rids);
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], 11u);
}

TEST_P(IndexTest, ConcurrentUniqueReservationIsExactlyOnce) {
  auto idx = Make(true);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < 500; ++k) {
        auto r = idx->TryReserve(Tuple{Value::Int(k)},
                                 static_cast<RowId>(t * 1000 + k), nullptr);
        if (r.ok() && *r) winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 500);  // Each key reserved exactly once.
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IndexTest,
                         ::testing::Values(IndexKind::kHash,
                                           IndexKind::kOrdered),
                         [](const auto& info) {
                           return info.param == IndexKind::kHash ? "Hash"
                                                                 : "Ordered";
                         });

TEST(OrderedIndexTest, RangeLookupWithPrefixBounds) {
  OrderedIndex idx("r", {0, 1}, false);
  for (int64_t w = 1; w <= 3; ++w) {
    for (int64_t o = 1; o <= 5; ++o) {
      ASSERT_TRUE(
          idx.Insert(Tuple{Value::Int(w), Value::Int(o)},
                     static_cast<RowId>(w * 100 + o)).ok());
    }
  }
  std::vector<RowId> rids;
  ASSERT_TRUE(idx.RangeLookup(Tuple{Value::Int(2)}, Tuple{Value::Int(2)},
                              &rids).ok());
  EXPECT_EQ(rids.size(), 5u);
  // Ascending order within the prefix.
  for (size_t i = 1; i < rids.size(); ++i) EXPECT_LT(rids[i - 1], rids[i]);
}

TEST(HashIndexTest, RangeLookupUnsupported) {
  HashIndex idx("h", {0}, false);
  std::vector<RowId> rids;
  EXPECT_EQ(idx.RangeLookup(Tuple{Value::Int(1)}, Tuple{Value::Int(2)}, &rids)
                .code(),
            StatusCode::kUnsupported);
}

TableSchema TestSchema() {
  return SchemaBuilder("t")
      .AddColumn("id", ValueType::kInt64, /*nullable=*/false)
      .AddColumn("name", ValueType::kString)
      .AddColumn("score", ValueType::kDouble)
      .SetPrimaryKey({"id"})
      .Build();
}

Tuple Row(int64_t id, const std::string& name, double score) {
  return Tuple{Value::Int(id), Value::Str(name), Value::Double(score)};
}

TEST(TableTest, InsertReadRoundTrip) {
  Table t(TestSchema());
  auto out = t.Insert(Row(1, "a", 0.5));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->inserted);
  Tuple row;
  ASSERT_TRUE(t.Read(out->rid, &row).ok());
  EXPECT_EQ(row[1].AsString(), "a");
  EXPECT_EQ(t.NumLiveRows(), 1u);
}

TEST(TableTest, PrimaryKeyEnforced) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Insert(Row(1, "a", 0)).ok());
  EXPECT_TRUE(t.Insert(Row(1, "b", 0)).status().IsAlreadyExists());
  // The failed insert must not leave the row visible.
  EXPECT_EQ(t.NumLiveRows(), 1u);
}

TEST(TableTest, OnConflictDoNothingReportsExisting) {
  Table t(TestSchema());
  auto first = t.Insert(Row(1, "a", 0));
  ASSERT_TRUE(first.ok());
  auto second = t.Insert(Row(1, "b", 0), OnConflict::kDoNothing);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->inserted);
  EXPECT_EQ(second->rid, first->rid);
  Tuple row;
  ASSERT_TRUE(t.Read(first->rid, &row).ok());
  EXPECT_EQ(row[1].AsString(), "a");  // Original untouched.
}

TEST(TableTest, SchemaValidationRejectsBadTuples) {
  Table t(TestSchema());
  EXPECT_EQ(t.Insert(Tuple{Value::Int(1)}).status().code(),
            StatusCode::kSchemaMismatch);
  EXPECT_EQ(t.Insert(Tuple{Value::Str("x"), Value::Str("a"),
                           Value::Double(0)})
                .status()
                .code(),
            StatusCode::kSchemaMismatch);
  EXPECT_EQ(t.Insert(Tuple{Value::Null(), Value::Str("a"), Value::Double(0)})
                .status()
                .code(),
            StatusCode::kConstraintViolation);
}

TEST(TableTest, IntAcceptedForDoubleColumn) {
  Table t(TestSchema());
  EXPECT_TRUE(t.Insert(Tuple{Value::Int(1), Value::Str("a"), Value::Int(3)})
                  .ok());
}

TEST(TableTest, UpdateMaintainsIndexes) {
  Table t(TestSchema());
  auto out = t.Insert(Row(1, "a", 0));
  ASSERT_TRUE(out.ok());
  Tuple before;
  ASSERT_TRUE(t.Update(out->rid, Row(2, "a", 1), &before).ok());
  EXPECT_EQ(before[0].AsInt(), 1);
  Index* pk = t.FindIndex("pk_t");
  std::vector<RowId> rids;
  pk->Lookup(Tuple{Value::Int(1)}, &rids);
  EXPECT_TRUE(rids.empty());
  pk->Lookup(Tuple{Value::Int(2)}, &rids);
  EXPECT_EQ(rids.size(), 1u);
}

TEST(TableTest, UpdateRejectsPkCollision) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Insert(Row(1, "a", 0)).ok());
  auto second = t.Insert(Row(2, "b", 0));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(
      t.Update(second->rid, Row(1, "b", 0), nullptr).IsAlreadyExists());
}

TEST(TableTest, DeleteTombstonesAndCleansIndexes) {
  Table t(TestSchema());
  auto out = t.Insert(Row(1, "a", 0));
  ASSERT_TRUE(out.ok());
  Tuple before;
  ASSERT_TRUE(t.Delete(out->rid, &before).ok());
  Tuple row;
  EXPECT_TRUE(t.Read(out->rid, &row).IsNotFound());
  EXPECT_EQ(t.NumLiveRows(), 0u);
  EXPECT_EQ(t.NumAllocatedRows(), 1u);  // RowId space is stable.
  std::vector<RowId> rids;
  t.FindIndex("pk_t")->Lookup(Tuple{Value::Int(1)}, &rids);
  EXPECT_TRUE(rids.empty());
  // Same PK can be re-inserted at a fresh RowId.
  auto again = t.Insert(Row(1, "b", 0));
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again->rid, out->rid);
}

TEST(TableTest, RestoreRevivesDeletedRow) {
  Table t(TestSchema());
  auto out = t.Insert(Row(1, "a", 0));
  Tuple before;
  ASSERT_TRUE(t.Delete(out->rid, &before).ok());
  ASSERT_TRUE(t.Restore(out->rid, before).ok());
  Tuple row;
  ASSERT_TRUE(t.Read(out->rid, &row).ok());
  EXPECT_EQ(row[1].AsString(), "a");
  std::vector<RowId> rids;
  t.FindIndex("pk_t")->Lookup(Tuple{Value::Int(1)}, &rids);
  EXPECT_EQ(rids.size(), 1u);
}

TEST(TableTest, ScanVisitsOnlyLiveRows) {
  Table t(TestSchema());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Insert(Row(i, "x", 0)).ok());
  Tuple scratch;
  ASSERT_TRUE(t.Delete(3, &scratch).ok());
  ASSERT_TRUE(t.Delete(7, &scratch).ok());
  int visited = 0;
  t.Scan([&](RowId rid, const Tuple&) {
    EXPECT_NE(rid, 3u);
    EXPECT_NE(rid, 7u);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 8);
}

TEST(TableTest, ScanRangeRespectsBounds) {
  Table t(TestSchema());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Insert(Row(i, "x", 0)).ok());
  std::vector<RowId> seen;
  t.ScanRange(2, 5, [&](RowId rid, const Tuple&) {
    seen.push_back(rid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<RowId>{2, 3, 4}));
}

TEST(TableTest, ScanEarlyStop) {
  Table t(TestSchema());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Insert(Row(i, "x", 0)).ok());
  int visited = 0;
  t.Scan([&](RowId, const Tuple&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(TableTest, CreateIndexBackfillsExistingRows) {
  Table t(TestSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.Insert(Row(i, i % 2 == 0 ? "even" : "odd", 0)).ok());
  }
  ASSERT_TRUE(t.CreateIndex("by_name", {"name"}, false, IndexKind::kHash)
                  .ok());
  std::vector<RowId> rids;
  t.FindIndex("by_name")->Lookup(Tuple{Value::Str("even")}, &rids);
  EXPECT_EQ(rids.size(), 3u);
}

TEST(TableTest, CreateUniqueIndexFailsOnDuplicateData) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Insert(Row(1, "dup", 0)).ok());
  ASSERT_TRUE(t.Insert(Row(2, "dup", 0)).ok());
  EXPECT_TRUE(t.CreateIndex("uniq_name", {"name"}, true, IndexKind::kHash)
                  .IsConstraintViolation());
  EXPECT_EQ(t.FindIndex("uniq_name"), nullptr);
}

TEST(TableTest, FindIndexCoveredByPrefersMostSelective) {
  Table t(TestSchema());
  ASSERT_TRUE(t.CreateIndex("by_name", {"name"}, false, IndexKind::kHash)
                  .ok());
  // eq columns {0 (id), 1 (name)}: the PK index on {0} and by_name on {1}
  // are both covered; PK is unique so it wins ties, but by_name has the
  // same length — selectivity rule picks the longer, then unique.
  Index* best = t.FindIndexCoveredBy({0, 1});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->name(), "pk_t");
}

TEST(TableTest, ConcurrentInsertsAssignDistinctRowIds) {
  Table t(TestSchema());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        auto out = t.Insert(Row(w * kPerThread + i, "c", 0));
        ASSERT_TRUE(out.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.NumLiveRows(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.NumAllocatedRows(),
            static_cast<uint64_t>(kThreads * kPerThread));
  int count = 0;
  t.Scan([&](RowId, const Tuple&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, kThreads * kPerThread);
}

TEST(TableTest, ConcurrentConflictingInsertsKeepOneWinner) {
  Table t(TestSchema());
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int k = 0; k < 300; ++k) {
        auto out = t.Insert(Row(k, "w", 0), OnConflict::kDoNothing);
        ASSERT_TRUE(out.ok());
        if (out->inserted) winners.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 300);
  EXPECT_EQ(t.NumLiveRows(), 300u);
}

}  // namespace
}  // namespace bullfrog
