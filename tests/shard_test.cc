// Shared-nothing sharding: router dispatch + merge, cross-shard
// coordinated migration, partition-preservation validation, and per-shard
// WAL durability (see src/shard/ and DESIGN.md "Shared-nothing sharding").

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/schema.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/sharded_database.h"
#include "sql/engine.h"

namespace bullfrog::shard {
namespace {

MigrationController::SubmitOptions FastLazy() {
  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 0;
  return opts;
}

class ShardTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;
  static constexpr int kRows = 64;

  void SetUp() override {
    db_ = std::make_unique<ShardedDatabase>(kShards);
    session_ = std::make_unique<Session>(db_.get());
    reference_ = std::make_unique<ShardedDatabase>(1);
    ref_session_ = std::make_unique<Session>(reference_.get());
    for (Session* s : {session_.get(), ref_session_.get()}) {
      ExecOn(s, "CREATE TABLE kv (id INT PRIMARY KEY, val INT, tag TEXT)");
      for (int i = 0; i < kRows; ++i) {
        ExecOn(s, "INSERT INTO kv VALUES (" + std::to_string(i) + ", " +
                      std::to_string(i * 10) + ", '" +
                      (i % 2 == 0 ? "even" : "odd") + "')");
      }
    }
  }

  sql::SqlEngine::QueryResult ExecOn(Session* s, const std::string& sql) {
    auto result = s->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(*result) : sql::SqlEngine::QueryResult{};
  }

  sql::SqlEngine::QueryResult Exec(const std::string& sql) {
    return ExecOn(session_.get(), sql);
  }

  std::unique_ptr<ShardedDatabase> db_;
  std::unique_ptr<Session> session_;
  std::unique_ptr<ShardedDatabase> reference_;
  std::unique_ptr<Session> ref_session_;
};

TEST_F(ShardTest, InsertSplitsRowsAcrossAllShards) {
  // FNV over 64 int keys should land rows on every one of 4 shards, and
  // the per-shard counts must sum to the inserted total.
  uint64_t total = 0;
  size_t populated = 0;
  for (size_t i = 0; i < kShards; ++i) {
    sql::SqlEngine engine(db_->shard(i));
    auto r = engine.Execute("SELECT COUNT(*) AS n FROM kv");
    ASSERT_TRUE(r.ok());
    const uint64_t n = static_cast<uint64_t>(r->rows[0][0].AsInt());
    total += n;
    if (n > 0) ++populated;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kRows));
  EXPECT_EQ(populated, kShards);
}

TEST_F(ShardTest, MultiRowInsertWithBadRowAppliesNothing) {
  // Satellite bugfix: a multi-row INSERT spanning shards used to split
  // into per-shard batches and execute them sequentially — a row the
  // engine rejects (arity, unknown column, type mismatch) mid-flight left
  // earlier shards' batches committed. All statically checkable errors
  // must now fail the whole statement before any shard executes.
  const auto count = [&] {
    return Exec("SELECT COUNT(*) AS n FROM kv").rows[0][0].AsInt();
  };
  const int64_t before = count();

  // Arity mismatch in the last row.
  auto r = session_->Execute(
      "INSERT INTO kv VALUES (1000, 1, 'a'), (1001, 2, 'b'), (1002, 3)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(count(), before);

  // Type mismatch in the last row.
  r = session_->Execute(
      "INSERT INTO kv VALUES (1000, 1, 'a'), (1001, 2, 'b'), "
      "(1002, 'oops', 'c')");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(count(), before);

  // Unknown column in the declared list.
  r = session_->Execute(
      "INSERT INTO kv (id, nope) VALUES (1000, 1), (1001, 2)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(count(), before);

  // Control: the same batch with every row valid lands atomically.
  r = session_->Execute(
      "INSERT INTO kv VALUES (1000, 1, 'a'), (1001, 2, 'b'), (1002, 3, 'c')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(count(), before + 3);

  // Runtime conflicts can still strike mid-flight (duplicate key on a
  // later shard after an earlier shard committed); the error must name
  // the partial write instead of pretending atomicity.
  r = session_->Execute(
      "INSERT INTO kv VALUES (2000, 1, 'x'), (2001, 2, 'y'), (1000, 3, 'z')");
  EXPECT_FALSE(r.ok());
  const int64_t after = count();
  if (after != before + 3) {
    // Some rows landed before the duplicate was hit — the message says so.
    EXPECT_NE(r.status().message().find("partially applied"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST_F(ShardTest, PointReadRoutesToOwningShard) {
  Router router(db_.get());
  for (int i = 0; i < kRows; ++i) {
    auto r = Exec("SELECT val FROM kv WHERE id = " + std::to_string(i));
    ASSERT_EQ(r.rows.size(), 1u) << "id=" << i;
    EXPECT_EQ(r.rows[0][0].AsInt(), i * 10);
    // The owning shard must actually hold the row.
    const size_t home = router.ShardOfKey(Value::Int(i));
    sql::SqlEngine engine(db_->shard(home));
    auto local = engine.Execute("SELECT val FROM kv WHERE id = " +
                                std::to_string(i));
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(local->rows.size(), 1u) << "id=" << i << " shard=" << home;
  }
}

TEST_F(ShardTest, CrossShardAggregatesMatchSingleShardReference) {
  const std::string queries[] = {
      "SELECT COUNT(*) AS n FROM kv",
      "SELECT SUM(val) AS s FROM kv",
      "SELECT AVG(val) AS a FROM kv",
      "SELECT MIN(val) AS lo, MAX(val) AS hi FROM kv",
      "SELECT COUNT(*) AS n, SUM(val) AS s, AVG(val) AS a FROM kv "
      "WHERE tag = 'even'",
      "SELECT AVG(val) AS a FROM kv WHERE val < 0",  // Empty: AVG is NULL.
  };
  for (const std::string& q : queries) {
    auto sharded = Exec(q);
    auto single = ExecOn(ref_session_.get(), q);
    ASSERT_EQ(sharded.rows.size(), 1u) << q;
    ASSERT_EQ(single.rows.size(), 1u) << q;
    ASSERT_EQ(sharded.rows[0].size(), single.rows[0].size()) << q;
    for (size_t c = 0; c < single.rows[0].size(); ++c) {
      const Value& got = sharded.rows[0][c];
      const Value& want = single.rows[0][c];
      ASSERT_EQ(got.type(), want.type()) << q << " col " << c;
      if (want.type() == ValueType::kDouble) {
        EXPECT_DOUBLE_EQ(got.AsDouble(), want.AsDouble()) << q << " col " << c;
      } else if (want.type() != ValueType::kNull) {
        EXPECT_EQ(got, want) << q << " col " << c;
      }
    }
  }
}

TEST_F(ShardTest, FanOutScanReturnsEveryRow) {
  auto r = Exec("SELECT id, val FROM kv WHERE tag = 'odd'");
  EXPECT_EQ(r.rows.size(), static_cast<size_t>(kRows / 2));
  auto single = ExecOn(ref_session_.get(),
                       "SELECT id, val FROM kv WHERE tag = 'odd'");
  EXPECT_EQ(r.rows.size(), single.rows.size());
}

TEST_F(ShardTest, UpdateOfPartitionColumnRejected) {
  auto r = session_->Execute("UPDATE kv SET id = 999 WHERE id = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported)
      << r.status().ToString();
}

TEST_F(ShardTest, ExplicitTransactionRejectedAcrossShards) {
  auto r = session_->Execute("BEGIN");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported)
      << r.status().ToString();
  // The 1-shard deployment passes BEGIN/COMMIT straight through.
  EXPECT_TRUE(ref_session_->Execute("BEGIN").ok());
  EXPECT_TRUE(ref_session_->Execute("COMMIT").ok());
}

TEST_F(ShardTest, CoordinatedMigrationDrainsEveryShard) {
  MigrationCoordinator& coord = db_->coordinator();
  EXPECT_FALSE(coord.HasActiveMigration());
  EXPECT_DOUBLE_EQ(coord.Progress(), 1.0);

  ASSERT_TRUE(session_
                  ->SubmitMigrationScript(
                      "CREATE TABLE kv2 PRIMARY KEY (id) AS "
                      "SELECT id, val, val + val AS dbl FROM kv; "
                      "DROP TABLE kv;",
                      FastLazy())
                  .ok());
  // With zero background delay the shards may drain before we look, so
  // the only states observable here are draining and complete.
  const MigrationCoordinator::State after_submit = coord.state();
  EXPECT_TRUE(after_submit == MigrationCoordinator::State::kDraining ||
              after_submit == MigrationCoordinator::State::kComplete);

  // Lazy reads against the new schema work mid-migration on every path:
  // routed point read and cross-shard aggregate.
  auto r = Exec("SELECT dbl FROM kv2 WHERE id = 3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 60);
  auto agg = Exec("SELECT COUNT(*) AS n, SUM(dbl) AS s FROM kv2");
  EXPECT_EQ(agg.rows[0][0].AsInt(), kRows);
  EXPECT_EQ(agg.rows[0][1].AsDouble(), 2.0 * 10 * (kRows - 1) * kRows / 2);

  // Completion is collective: the coordinator reports complete only after
  // every shard's background migrator drains its partition.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!coord.IsComplete() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(coord.IsComplete());
  EXPECT_EQ(coord.state(), MigrationCoordinator::State::kComplete);
  EXPECT_DOUBLE_EQ(coord.Progress(), 1.0);

  // Per-shard accounting: every shard participated, units sum to the
  // aggregate, and every shard reports complete.
  const std::vector<MigrationCoordinator::ShardProgress> shards =
      coord.PerShard();
  ASSERT_EQ(shards.size(), kShards);
  uint64_t units = 0;
  for (const auto& sp : shards) {
    EXPECT_TRUE(sp.complete) << "shard " << sp.shard;
    EXPECT_DOUBLE_EQ(sp.progress, 1.0) << "shard " << sp.shard;
    EXPECT_GT(sp.rows_migrated, 0u) << "shard " << sp.shard;
    units += sp.units_migrated;
  }
  EXPECT_EQ(units, coord.TotalUnitsMigrated());
  EXPECT_GT(units, 0u);

  // Old table is gone everywhere; the new one holds every row.
  EXPECT_FALSE(session_->Execute("SELECT * FROM kv").ok());
  auto n = Exec("SELECT COUNT(*) AS n FROM kv2");
  EXPECT_EQ(n.rows[0][0].AsInt(), kRows);
}

TEST_F(ShardTest, NonPartitionPreservingMigrationRejected) {
  // GROUP BY tag re-homes rows (output PK 'tag' is not a pass-through of
  // input partition column 'id') — inadmissible without row exchange.
  const Status st = session_->SubmitMigrationScript(
      "CREATE TABLE by_tag PRIMARY KEY (tag) AS "
      "SELECT tag, COUNT(*) AS n FROM kv GROUP BY tag;",
      FastLazy());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsupported) << st.ToString();
  // Nothing was submitted anywhere; the coordinator is reusable.
  EXPECT_FALSE(db_->coordinator().HasActiveMigration());
  EXPECT_EQ(db_->coordinator().state(), MigrationCoordinator::State::kIdle);
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_FALSE(db_->shard(i)->controller().HasActiveMigration());
  }
  // A partition-preserving script still goes through afterwards.
  EXPECT_TRUE(session_
                  ->SubmitMigrationScript(
                      "CREATE TABLE kv3 PRIMARY KEY (id) AS "
                      "SELECT id, val FROM kv; DROP TABLE kv;",
                      FastLazy())
                  .ok());
}

TEST_F(ShardTest, MigrationDdlRejectedOnQueryPath) {
  auto r = session_->Execute(
      "CREATE TABLE kv2 PRIMARY KEY (id) AS SELECT id, val FROM kv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST(ShardPartitionTest, HashIsStableAcrossProcessRestarts) {
  // FNV-1a with the canonical offset/prime: these are process-independent
  // constants, so a shard's WAL can be recovered by a fresh process.
  EXPECT_EQ(HashPartitionValue(Value::Int(0)) % 4,
            HashPartitionValue(Value::Int(0)) % 4);
  EXPECT_NE(HashPartitionValue(Value::Int(1)),
            HashPartitionValue(Value::Str("1")));
  // Int->Timestamp / Int->Double coercion hashes like the column type.
  EXPECT_EQ(HashPartitionValue(
                CoercePartitionValue(ValueType::kTimestamp, Value::Int(7))),
            HashPartitionValue(Value::Timestamp(7)));
  EXPECT_EQ(HashPartitionValue(
                CoercePartitionValue(ValueType::kDouble, Value::Int(7))),
            HashPartitionValue(Value::Double(7.0)));
}

class ShardDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bf_shard_wal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ShardDurabilityTest, RecoversEveryShardSegmentIndependently) {
  constexpr int kRows = 48;
  {
    ShardedDatabase db(4);
    ASSERT_TRUE(db.OpenDurable(dir_.string()).ok());
    Session s(&db);
    ASSERT_TRUE(
        s.Execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)").ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(s.Execute("INSERT INTO kv VALUES (" + std::to_string(i) +
                            ", " + std::to_string(i) + ")")
                      .ok());
    }
  }
  // Every shard owns its own segment directory.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        std::filesystem::is_directory(dir_ / ("shard-" + std::to_string(i))))
        << "shard-" << i;
  }
  // A fresh process recovers all shards and serves the full data set.
  {
    ShardedDatabase db(4);
    ASSERT_TRUE(db.OpenDurable(dir_.string()).ok());
    Session s(&db);
    auto r = s.Execute("SELECT COUNT(*) AS n, SUM(val) AS s FROM kv");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].AsInt(), kRows);
    EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(),
                     static_cast<double>((kRows - 1) * kRows / 2));
  }
  // Re-opening with a different shard count would silently re-home keys.
  {
    ShardedDatabase db(2);
    const Status st = db.OpenDurable(dir_.string());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  }
}

TEST_F(ShardDurabilityTest, BulkInsertIsLoggedAndRecovered) {
  // Satellite: Database::BulkInsert now logs through the WAL as one
  // batched txn-0 append, so a bulk-loaded table survives a restart.
  {
    Database db;
    replication::WalDir wal;
    ASSERT_TRUE(wal.Open(dir_.string()).ok());
    ASSERT_TRUE(wal.Recover(&db).ok());
    ASSERT_TRUE(wal.StartLogging(&db).ok());
    TableSchema schema =
        SchemaBuilder("bulk")
            .AddColumn("id", ValueType::kInt64, /*nullable=*/false)
            .AddColumn("val", ValueType::kInt64)
            .SetPrimaryKey({"id"})
            .Build();
    ASSERT_TRUE(db.CreateTable(std::move(schema)).ok());
    std::vector<Tuple> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back(Tuple{Value::Int(i), Value::Int(i * 2)});
    }
    ASSERT_TRUE(db.BulkInsert("bulk", rows).ok());
  }
  {
    Database db;
    replication::WalDir wal;
    ASSERT_TRUE(wal.Open(dir_.string()).ok());
    ASSERT_TRUE(wal.Recover(&db).ok());
    sql::SqlEngine engine(&db);
    auto r = engine.Execute("SELECT COUNT(*) AS n, SUM(val) AS s FROM bulk");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].AsInt(), 100);
    EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 9900.0);
  }
}

}  // namespace
}  // namespace bullfrog::shard
