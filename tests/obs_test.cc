// Unit tests for the observability layer (src/obs): metrics registry
// semantics, histogram bucketing/quantiles, Prometheus rendering, the
// migration tracer's bounded ring — plus an integration test that drives
// a real lazy migration through a Database and checks the per-mode
// granule counters (lazy / background / forced) reconcile exactly with
// the migrated-unit total and with controller Progress().

#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/engine.h"

namespace bullfrog {
namespace {

using obs::MetricsRegistry;
using obs::MigrationTracer;
using obs::TraceEventKind;

/// First sample value for the exact series name (family + label body);
/// -1 when absent.
double MetricValue(const std::string& scrape, const std::string& series) {
  const std::string text = "\n" + scrape;
  const std::string needle = "\n" + series + " ";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

TEST(MetricsRegistryTest, CounterAndGaugeHandlesAreStable) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("frog_hops_total");
  EXPECT_EQ(c, reg.GetCounter("frog_hops_total"));
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42u);

  obs::Gauge* g = reg.GetGauge("frog_pond_depth");
  EXPECT_EQ(g, reg.GetGauge("frog_pond_depth"));
  g->Set(7);
  g->Add(5);
  g->Sub(2);
  EXPECT_EQ(g->value(), 10);

  // Distinct label bodies are distinct series within one family.
  obs::Counter* a = reg.GetCounter("frog_croaks_total", "kind=\"loud\"");
  obs::Counter* b = reg.GetCounter("frog_croaks_total", "kind=\"soft\"");
  EXPECT_NE(a, b);
  a->Inc(3);
  b->Inc(1);

  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE frog_hops_total counter"), std::string::npos);
  EXPECT_NE(out.find("# TYPE frog_pond_depth gauge"), std::string::npos);
  EXPECT_DOUBLE_EQ(MetricValue(out, "frog_hops_total"), 42.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "frog_pond_depth"), 10.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "frog_croaks_total{kind=\"loud\"}"), 3.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "frog_croaks_total{kind=\"soft\"}"), 1.0);
}

TEST(MetricsRegistryTest, HistogramBucketsSumCountAndQuantiles) {
  MetricsRegistry reg;
  obs::Histogram* h =
      reg.GetHistogram("lat_seconds", "", {0.001, 0.01, 0.1, 1.0});
  // 10 observations: 4 in (..0.001], 3 in (0.001..0.01], 2 in
  // (0.01..0.1], 1 overflowing into +Inf.
  for (int i = 0; i < 4; ++i) h->Observe(0.0005);
  for (int i = 0; i < 3; ++i) h->Observe(0.005);
  for (int i = 0; i < 2; ++i) h->Observe(0.05);
  h->Observe(5.0);

  EXPECT_EQ(h->count(), 10u);
  EXPECT_NEAR(h->sum(), 4 * 0.0005 + 3 * 0.005 + 2 * 0.05 + 5.0, 1e-9);
  EXPECT_EQ(h->BucketCount(0), 4u);
  EXPECT_EQ(h->BucketCount(1), 3u);
  EXPECT_EQ(h->BucketCount(2), 2u);
  EXPECT_EQ(h->BucketCount(3), 0u);
  EXPECT_EQ(h->BucketCount(4), 1u);  // +Inf.

  // Quantiles are monotone and land in the right buckets.
  const double p10 = h->Quantile(0.10);
  const double p50 = h->Quantile(0.50);
  const double p90 = h->Quantile(0.90);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p10, 0.001);
  EXPECT_GT(p50, 0.001);
  EXPECT_LE(p50, 0.01);
  // The overflow observation clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 1.0);
  // Empty histogram quantile is 0.
  obs::Histogram* empty = reg.GetHistogram("empty_seconds", "", {1.0});
  EXPECT_DOUBLE_EQ(empty->Quantile(0.99), 0.0);

  // Rendering: cumulative buckets ending in +Inf == _count.
  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_DOUBLE_EQ(MetricValue(out, "lat_seconds_bucket{le=\"0.001\"}"), 4.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "lat_seconds_bucket{le=\"0.01\"}"), 7.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "lat_seconds_bucket{le=\"0.1\"}"), 9.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "lat_seconds_bucket{le=\"1\"}"), 9.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "lat_seconds_bucket{le=\"+Inf\"}"), 10.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "lat_seconds_count"), 10.0);
}

TEST(MetricsRegistryTest, QuantileClampsAtInfBucketToLastFiniteBound) {
  // Satellite pin: when the requested mass lands in the implicit +Inf
  // bucket, Quantile has no finite upper edge to interpolate toward and
  // must clamp to bounds().back() rather than extrapolate or return Inf.
  MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("inf_seconds", "", {0.01, 0.1});
  h->Observe(50.0);  // Everything overflows into +Inf.
  h->Observe(90.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.1);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 0.1);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 0.1);
  EXPECT_FALSE(std::isinf(h->Quantile(0.999)));
}

TEST(MetricsRegistryTest, LabelValueEscaping) {
  // Backslash first, then quote and newline — the render must stay one
  // well-formed sample line even for hostile table names.
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(obs::EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::LabelPair("table", "ord\"ers"),
            "table=\"ord\\\"ers\"");
}

TEST(MetricsRegistryTest, HostileTableNameRendersAsOneSampleLine) {
  MetricsRegistry reg;
  const std::string hostile = "acc\"ts\\v2\nDROP";
  obs::Counter* c =
      reg.GetCounter("frog_pulls_total", obs::LabelPair("table", hostile));
  c->Inc(3);
  const std::string out = reg.RenderPrometheus();
  // The raw newline must not appear inside the rendered series.
  EXPECT_NE(out.find("table=\"acc\\\"ts\\\\v2\\nDROP\""), std::string::npos)
      << out;
  // Every line still parses: exactly one space separating name and value.
  size_t lines = 0;
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const std::string line = out.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++lines;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* parse_end = nullptr;
    (void)std::strtod(line.c_str() + space + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "unparseable value: " << line;
  }
  EXPECT_GT(lines, 0u);
}

TEST(MetricsRegistryTest, CallbacksRenderAtScrapeTime) {
  MetricsRegistry reg;
  double live = 1.5;
  reg.SetCallback("water_level", "", [&live] { return live; });
  EXPECT_DOUBLE_EQ(MetricValue(reg.RenderPrometheus(), "water_level"), 1.5);
  live = 2.25;  // No re-registration needed; the scrape sees the update.
  EXPECT_DOUBLE_EQ(MetricValue(reg.RenderPrometheus(), "water_level"), 2.25);
}

TEST(MetricsRegistryTest, ExponentialBoundsAreSortedAndSized) {
  const std::vector<double> b = MetricsRegistry::ExponentialBounds(1e-6, 2.0, 22);
  ASSERT_EQ(b.size(), 22u);
  EXPECT_DOUBLE_EQ(b[0], 1e-6);
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(b[i], b[i - 1] * 2.0);
  }
}

TEST(MetricsRegistryTest, WalGroupCommitFamiliesRender) {
  // The redo log's group-commit instrumentation: one batch-size and one
  // sync-latency observation per sink call, one ack per released commit.
  MetricsRegistry reg;
  RedoLog log;
  log.BindMetrics(&reg);
  log.SetSink(
      [](const std::vector<LogRecord>&) { return Status::OK(); });
  LogRecord r;
  r.op = LogOp::kInsert;
  r.table = "t";
  ASSERT_TRUE(log.AppendCommitted(1, {r}).ok());
  ASSERT_TRUE(log.AppendCommitted(2, {r}).ok());

  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE bullfrog_wal_group_commit_batch_size histogram"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE bullfrog_wal_sync_seconds histogram"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(MetricValue(out, "bullfrog_wal_acks_released_total"), 2.0);
  // Two sequential commits -> two sink batches, each observed once.
  EXPECT_DOUBLE_EQ(
      MetricValue(out, "bullfrog_wal_group_commit_batch_size_count"), 2.0);
  EXPECT_DOUBLE_EQ(MetricValue(out, "bullfrog_wal_sync_seconds_count"), 2.0);
}

TEST(MigrationTracerTest, RecordsOldestFirstAndRenders) {
  MigrationTracer tracer(/*capacity=*/8);
  tracer.Record(TraceEventKind::kSubmit, "users_v2", "strategy=lazy");
  tracer.Record(TraceEventKind::kSwitch, "users_v2");
  tracer.Record(TraceEventKind::kComplete, "users_v2", "elapsed_s=0.1");

  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kSubmit);
  EXPECT_EQ(events[2].kind, TraceEventKind::kComplete);
  EXPECT_LE(events[0].t_seconds, events[2].t_seconds);
  EXPECT_EQ(events[0].migration, "users_v2");
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::string text = tracer.Render();
  EXPECT_NE(text.find("submit"), std::string::npos);
  EXPECT_NE(text.find("complete"), std::string::npos);
  EXPECT_NE(text.find("users_v2"), std::string::npos);
  EXPECT_NE(text.find("strategy=lazy"), std::string::npos);
}

TEST(MigrationTracerTest, RingDropsOldestBeyondCapacity) {
  MigrationTracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.Record(TraceEventKind::kChunk, "m", "n=" + std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, oldest-first.
  EXPECT_EQ(events[0].detail, "n=6");
  EXPECT_EQ(events[3].detail, "n=9");
  // Render announces the drop and honours max_events.
  const std::string text = tracer.Render(/*max_events=*/2);
  EXPECT_NE(text.find("dropped"), std::string::npos);
  EXPECT_EQ(text.find("n=7"), std::string::npos);
  EXPECT_NE(text.find("n=9"), std::string::npos);

  tracer.Reset();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(MetricsRegistryTest, ConcurrentObservationIsConsistent) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("spins_total");
  obs::Histogram* h =
      reg.GetHistogram("spin_seconds", "", MetricsRegistry::LatencyBounds());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Observe(1e-5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h->sum(), kThreads * kPerThread * 1e-5, 1e-6);
}

// Integration: a real lazy migration's granule counters, split by mode,
// must reconcile with the total and with Progress() — every migrated
// unit is attributed to exactly one of lazy (client pull), background
// (sweep chunk), or forced (ON CONFLICT).
TEST(ObservabilityIntegrationTest, LazyAndBackgroundUnitsReconcile) {
  Database db;
  sql::SqlEngine engine(&db);
  ASSERT_TRUE(engine
                  .Execute("CREATE TABLE accts (id INT PRIMARY KEY, "
                           "bal INT)")
                  .ok());
  for (int base = 0; base < 400;) {
    std::string sql = "INSERT INTO accts VALUES ";
    for (int i = 0; i < 100; ++i, ++base) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(base) + ", " + std::to_string(base % 7) +
             ")";
    }
    ASSERT_TRUE(engine.Execute(sql).ok());
  }

  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 100;
  opts.lazy.background_batch = 8;
  opts.lazy.background_pause_us = 100;
  ASSERT_TRUE(engine
                  .SubmitMigrationScript(
                      "CREATE TABLE accts_v2 PRIMARY KEY (id) AS "
                      "SELECT id, bal * 2 AS dbl FROM accts;\n"
                      "DROP TABLE accts;",
                      opts)
                  .ok());

  // Lazy pulls before the background sweep starts: point reads migrate
  // just the granules they touch.
  for (int id = 0; id < 40; id += 4) {
    auto r = engine.Execute("SELECT dbl FROM accts_v2 WHERE id = " +
                            std::to_string(id));
    ASSERT_TRUE(r.ok()) << r.status();
  }
  const std::string mid = db.metrics().RenderPrometheus();
  const double mid_lazy =
      MetricValue(mid, "bullfrog_migration_units_migrated{mode=\"lazy\"}");
  EXPECT_GT(mid_lazy, 0.0) << mid;

  // Let the background sweep finish the rest.
  Stopwatch waited;
  while (!db.controller().IsComplete()) {
    ASSERT_LT(waited.ElapsedSeconds(), 30.0) << "migration never completed";
    Clock::SleepMillis(10);
  }
  EXPECT_DOUBLE_EQ(db.controller().Progress(), 1.0);

  const std::string out = db.metrics().RenderPrometheus();
  const double total = MetricValue(out, "bullfrog_migration_units_migrated");
  const double lazy =
      MetricValue(out, "bullfrog_migration_units_migrated{mode=\"lazy\"}");
  const double background = MetricValue(
      out, "bullfrog_migration_units_migrated{mode=\"background\"}");
  const double forced =
      MetricValue(out, "bullfrog_migration_units_migrated{mode=\"forced\"}");
  EXPECT_GT(total, 0.0) << out;
  EXPECT_GT(lazy, 0.0) << out;
  EXPECT_GT(background, 0.0) << out;
  EXPECT_DOUBLE_EQ(forced, 0.0) << out;  // No ON CONFLICT in this plan.
  EXPECT_DOUBLE_EQ(lazy + background + forced, total) << out;

  // Txn-layer callbacks and the lifecycle trace rode along.
  EXPECT_GT(MetricValue(out, "bullfrog_txn_commits"), 0.0) << out;
  EXPECT_DOUBLE_EQ(MetricValue(out, "bullfrog_migration_complete"), 1.0)
      << out;
  const std::string trace = db.tracer().Render();
  EXPECT_NE(trace.find("submit"), std::string::npos) << trace;
  EXPECT_NE(trace.find("switch"), std::string::npos) << trace;
  EXPECT_NE(trace.find("first_lazy_pull"), std::string::npos) << trace;
  EXPECT_NE(trace.find("background_start"), std::string::npos) << trace;
  EXPECT_NE(trace.find("complete"), std::string::npos) << trace;
}

}  // namespace
}  // namespace bullfrog
