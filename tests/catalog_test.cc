#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"

namespace bullfrog {
namespace {

TableSchema Simple(const std::string& name) {
  return SchemaBuilder(name)
      .AddColumn("id", ValueType::kInt64, /*nullable=*/false)
      .AddColumn("v", ValueType::kString)
      .SetPrimaryKey({"id"})
      .Build();
}

TEST(SchemaTest, ColumnIndexLookup) {
  TableSchema s = Simple("t");
  EXPECT_EQ(*s.ColumnIndex("id"), 0u);
  EXPECT_EQ(*s.ColumnIndex("v"), 1u);
  EXPECT_FALSE(s.ColumnIndex("missing").has_value());
  EXPECT_TRUE(s.RequireColumn("missing").status().code() ==
              StatusCode::kInvalidArgument);
}

TEST(SchemaTest, PrimaryKeyIndices) {
  TableSchema s = SchemaBuilder("t")
                      .AddColumn("a", ValueType::kInt64)
                      .AddColumn("b", ValueType::kInt64)
                      .SetPrimaryKey({"b", "a"})
                      .Build();
  EXPECT_EQ(s.PrimaryKeyIndices(), (std::vector<size_t>{1, 0}));
}

TEST(SchemaTest, ProjectExtractsNamedColumns) {
  TableSchema s = Simple("t");
  Tuple row{Value::Int(3), Value::Str("x")};
  auto projected = s.Project(row, {"v", "id"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ((*projected)[0].AsString(), "x");
  EXPECT_EQ((*projected)[1].AsInt(), 3);
}

TEST(SchemaTest, BuilderCarriesConstraints) {
  TableSchema s = SchemaBuilder("child")
                      .AddColumn("id", ValueType::kInt64, false)
                      .AddColumn("pid", ValueType::kInt64)
                      .SetPrimaryKey({"id"})
                      .AddUnique("u_pid", {"pid"})
                      .AddForeignKey("fk_p", {"pid"}, "parent", {"id"})
                      .Build();
  ASSERT_EQ(s.unique_constraints().size(), 1u);
  EXPECT_EQ(s.unique_constraints()[0].name, "u_pid");
  ASSERT_EQ(s.foreign_keys().size(), 1u);
  EXPECT_EQ(s.foreign_keys()[0].parent_table, "parent");
}

TEST(SchemaTest, ToStringMentionsEverything) {
  const std::string s = Simple("orders").ToString();
  EXPECT_NE(s.find("orders"), std::string::npos);
  EXPECT_NE(s.find("PRIMARY KEY"), std::string::npos);
}

TEST(CatalogTest, CreateAndFind) {
  Catalog catalog;
  auto t = catalog.CreateTable(Simple("a"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(catalog.FindTable("a"), *t);
  EXPECT_EQ(catalog.FindTable("b"), nullptr);
  EXPECT_TRUE(catalog.CreateTable(Simple("a")).status().IsAlreadyExists());
}

TEST(CatalogTest, RequireActiveRejectsRetired) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(Simple("a")).ok());
  ASSERT_TRUE(catalog.RetireTable("a").ok());
  // The big-flip semantics: client requests against the old schema are
  // rejected...
  auto active = catalog.RequireActive("a");
  EXPECT_EQ(active.status().code(), StatusCode::kSchemaMismatch);
  // ...but migration workers may still read it.
  EXPECT_TRUE(catalog.RequireReadable("a").ok());
  EXPECT_EQ(catalog.GetState("a"), TableState::kRetired);
}

TEST(CatalogTest, DropMakesTableUnreachable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(Simple("a")).ok());
  ASSERT_TRUE(catalog.DropTable("a").ok());
  EXPECT_TRUE(catalog.RequireReadable("a").status().IsNotFound());
  EXPECT_EQ(catalog.GetState("a"), TableState::kDropped);
  // A dropped name can be reused.
  EXPECT_TRUE(catalog.CreateTable(Simple("a")).ok());
}

TEST(CatalogTest, SchemaVersionMonotonic) {
  Catalog catalog;
  const uint64_t v0 = catalog.schema_version();
  EXPECT_EQ(catalog.BumpSchemaVersion(), v0 + 1);
  EXPECT_EQ(catalog.schema_version(), v0 + 1);
}

TEST(CatalogTest, TablesInState) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(Simple("a")).ok());
  ASSERT_TRUE(catalog.CreateTable(Simple("b")).ok());
  ASSERT_TRUE(catalog.RetireTable("b").ok());
  EXPECT_EQ(catalog.TablesInState(TableState::kActive),
            std::vector<std::string>{"a"});
  EXPECT_EQ(catalog.TablesInState(TableState::kRetired),
            std::vector<std::string>{"b"});
}

TEST(CatalogTest, PkAndUniqueIndexesAutoCreated) {
  Catalog catalog;
  auto t = catalog.CreateTable(SchemaBuilder("u")
                                   .AddColumn("id", ValueType::kInt64, false)
                                   .AddColumn("email", ValueType::kString)
                                   .SetPrimaryKey({"id"})
                                   .AddUnique("u_email", {"email"})
                                   .Build());
  ASSERT_TRUE(t.ok());
  EXPECT_NE((*t)->FindIndex("pk_u"), nullptr);
  EXPECT_NE((*t)->FindIndex("u_email"), nullptr);
  EXPECT_TRUE((*t)->FindIndex("u_email")->unique());
}

}  // namespace
}  // namespace bullfrog
