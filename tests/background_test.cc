#include <atomic>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "migration/background.h"
#include "migration/statement_migrator.h"
#include "txn/txn_manager.h"

namespace bullfrog {
namespace {

class BackgroundTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 400;

  void SetUp() override {
    auto src = catalog_.CreateTable(SchemaBuilder("src")
                                        .AddColumn("id", ValueType::kInt64,
                                                   false)
                                        .AddColumn("v", ValueType::kInt64)
                                        .SetPrimaryKey({"id"})
                                        .Build());
    ASSERT_TRUE(src.ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(
          (*src)->Insert(Tuple{Value::Int(i), Value::Int(i)}).ok());
    }
    ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("dst")
                                         .AddColumn("id", ValueType::kInt64,
                                                    false)
                                         .AddColumn("v", ValueType::kInt64)
                                         .SetPrimaryKey({"id"})
                                         .Build())
                    .ok());
  }

  std::unique_ptr<StatementMigrator> MakeCopy(LazyConfig config) {
    MigrationStatement stmt;
    stmt.name = "copy";
    stmt.category = MigrationCategory::kOneToOne;
    stmt.input_tables = {"src"};
    stmt.output_tables = {"dst"};
    stmt.provenance.AddPassThrough("id", "src", "id");
    stmt.provenance.AddPassThrough("v", "src", "v");
    stmt.row_transform =
        [](const Tuple& in) -> Result<std::vector<TargetRow>> {
      return std::vector<TargetRow>{TargetRow{0, in}};
    };
    auto m = MakeStatementMigrator(&catalog_, &txns_, std::move(stmt),
                                   config);
    EXPECT_TRUE(m.ok());
    return std::move(*m);
  }

  Catalog catalog_;
  TransactionManager txns_;
};

TEST_F(BackgroundTest, CompletesAndFiresCallbackOnce) {
  LazyConfig config;
  config.background_start_delay_ms = 10;
  config.background_pause_us = 0;
  config.background_threads = 3;
  auto migrator = MakeCopy(config);
  std::atomic<int> completions{0};
  BackgroundMigrator bg({migrator.get()}, config,
                        [&] { completions.fetch_add(1); });
  bg.Start();
  Stopwatch sw;
  while (!bg.finished() && sw.ElapsedMillis() < 10000) Clock::SleepMillis(5);
  EXPECT_TRUE(bg.finished());
  EXPECT_EQ(completions.load(), 1);
  EXPECT_TRUE(migrator->IsComplete());
  EXPECT_EQ(catalog_.FindTable("dst")->NumLiveRows(),
            static_cast<uint64_t>(kRows));
  EXPECT_GE(bg.work_start_seconds(), 0.0);
  EXPECT_GE(bg.finish_seconds(), bg.work_start_seconds());
}

TEST_F(BackgroundTest, RespectsStartDelay) {
  LazyConfig config;
  config.background_start_delay_ms = 300;
  auto migrator = MakeCopy(config);
  BackgroundMigrator bg({migrator.get()}, config);
  bg.Start();
  Clock::SleepMillis(100);
  EXPECT_FALSE(bg.started_working());
  EXPECT_EQ(catalog_.FindTable("dst")->NumLiveRows(), 0u);
  bg.Stop();
}

TEST_F(BackgroundTest, StopDuringDelayIsClean) {
  LazyConfig config;
  config.background_start_delay_ms = 10000;
  auto migrator = MakeCopy(config);
  BackgroundMigrator bg({migrator.get()}, config);
  bg.Start();
  Clock::SleepMillis(20);
  bg.Stop();  // Must not hang or crash.
  EXPECT_FALSE(bg.finished());
}

TEST_F(BackgroundTest, StartIsIdempotent) {
  LazyConfig config;
  config.background_start_delay_ms = 10;
  config.background_pause_us = 0;
  auto migrator = MakeCopy(config);
  BackgroundMigrator bg({migrator.get()}, config);
  bg.Start();
  bg.Start();  // No double thread spawn.
  Stopwatch sw;
  while (!bg.finished() && sw.ElapsedMillis() < 10000) Clock::SleepMillis(5);
  EXPECT_TRUE(bg.finished());
  // Exactly-once despite (attempted) duplicate Start: the PK on dst
  // would reject duplicates.
  EXPECT_EQ(catalog_.FindTable("dst")->NumLiveRows(),
            static_cast<uint64_t>(kRows));
}

TEST_F(BackgroundTest, DrivesMultipleStatements) {
  ASSERT_TRUE(catalog_.CreateTable(SchemaBuilder("dst2")
                                       .AddColumn("id", ValueType::kInt64,
                                                  false)
                                       .SetPrimaryKey({"id"})
                                       .Build())
                  .ok());
  LazyConfig config;
  config.background_start_delay_ms = 10;
  config.background_pause_us = 0;
  auto m1 = MakeCopy(config);
  MigrationStatement stmt2;
  stmt2.name = "ids";
  stmt2.category = MigrationCategory::kOneToOne;
  stmt2.input_tables = {"src"};
  stmt2.output_tables = {"dst2"};
  stmt2.provenance.AddPassThrough("id", "src", "id");
  stmt2.row_transform =
      [](const Tuple& in) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{0, Tuple{in[0]}}};
  };
  auto m2 = MakeStatementMigrator(&catalog_, &txns_, std::move(stmt2),
                                  config);
  ASSERT_TRUE(m2.ok());
  BackgroundMigrator bg({m1.get(), m2->get()}, config);
  bg.Start();
  Stopwatch sw;
  while (!bg.finished() && sw.ElapsedMillis() < 10000) Clock::SleepMillis(5);
  EXPECT_TRUE(bg.finished());
  EXPECT_EQ(catalog_.FindTable("dst")->NumLiveRows(),
            static_cast<uint64_t>(kRows));
  EXPECT_EQ(catalog_.FindTable("dst2")->NumLiveRows(),
            static_cast<uint64_t>(kRows));
}

/// A migrator whose background chunks always fail — models a statement
/// with a persistently broken transform / dead input.
class FailingMigrator final : public StatementMigrator {
 public:
  explicit FailingMigrator(MigrationStatement stmt)
      : StatementMigrator(nullptr, nullptr, std::move(stmt), LazyConfig{}) {}

  Result<uint64_t> MigrateBackgroundChunk(uint64_t, bool* done) override {
    calls.fetch_add(1, std::memory_order_acq_rel);
    *done = false;
    return Status(StatusCode::kInternal, "transform keeps failing");
  }
  bool IsComplete() const override { return false; }
  MigrationTracker* tracker() override { return nullptr; }
  double Progress() const override { return 0.0; }
  std::vector<uint64_t> boundaries() const override { return {}; }

  std::atomic<int> calls{0};

 protected:
  Status MigrateCandidates(const RewrittenPredicates&) override {
    return Status::OK();
  }
};

MigrationStatement FailingStmt() {
  MigrationStatement stmt;
  stmt.name = "failing";
  stmt.category = MigrationCategory::kOneToOne;
  stmt.input_tables = {"src"};
  stmt.output_tables = {"dst"};
  return stmt;
}

TEST_F(BackgroundTest, PersistentErrorIsRecordedAndRetiresStatement) {
  LazyConfig config;
  config.background_start_delay_ms = 0;
  config.background_pause_us = 0;
  config.background_threads = 2;
  FailingMigrator failing(FailingStmt());
  std::atomic<int> completions{0};
  BackgroundMigrator bg({&failing}, config,
                        [&] { completions.fetch_add(1); });
  bg.Start();
  // The threads must give up (statement abandoned after
  // kMaxConsecutiveFailures), not spin forever.
  Stopwatch sw;
  while (!bg.gave_up() && sw.ElapsedMillis() < 10000) Clock::SleepMillis(5);
  EXPECT_TRUE(bg.gave_up());
  bg.Stop();

  // First error is sticky and surfaced.
  EXPECT_FALSE(bg.last_error().ok());
  EXPECT_EQ(bg.last_error().code(), StatusCode::kInternal);
  // An abandoned statement means the migration is NOT complete.
  EXPECT_FALSE(bg.finished());
  EXPECT_EQ(completions.load(), 0);
  // Retries are bounded: each thread stops at the abandonment threshold
  // (plus at most one in-flight chunk per thread).
  EXPECT_LE(failing.calls.load(),
            config.background_threads *
                (BackgroundMigrator::kMaxConsecutiveFailures + 1));
}

TEST_F(BackgroundTest, ErrorBacksOffInsteadOfBusySpinning) {
  LazyConfig config;
  config.background_start_delay_ms = 0;
  config.background_pause_us = 0;
  config.background_threads = 1;
  FailingMigrator failing(FailingStmt());
  BackgroundMigrator bg({&failing}, config);
  bg.Start();
  Stopwatch sw;
  while (!bg.gave_up() && sw.ElapsedMillis() < 10000) Clock::SleepMillis(5);
  bg.Stop();
  // Exponential backoff between failing rounds: reaching the threshold
  // takes at least the sum of the first few backoff sleeps (2+4+8+... ms),
  // so well over a couple of milliseconds of wall clock — a busy spin
  // would burn through the threshold in microseconds.
  EXPECT_GE(sw.ElapsedMillis(), 2);
  EXPECT_EQ(failing.calls.load(),
            BackgroundMigrator::kMaxConsecutiveFailures);
}

TEST_F(BackgroundTest, ConcurrentStartStopIsSafe) {
  // Start() and Stop() from different threads must not race on the
  // thread vector (TSan locks this in).
  for (int round = 0; round < 20; ++round) {
    LazyConfig config;
    config.background_start_delay_ms = 1000;  // Threads park in the delay.
    FailingMigrator failing(FailingStmt());
    BackgroundMigrator bg({&failing}, config);
    std::thread starter([&] { bg.Start(); });
    std::thread stopper([&] { bg.Stop(); });
    starter.join();
    stopper.join();
    bg.Stop();  // Idempotent; joins whatever Start launched.
    EXPECT_FALSE(bg.finished());
  }
}

TEST_F(BackgroundTest, CooperatesWithForegroundWorkers) {
  LazyConfig config;
  config.background_start_delay_ms = 0;
  config.background_pause_us = 0;
  auto migrator = MakeCopy(config);
  BackgroundMigrator bg({migrator.get()}, config);
  bg.Start();
  // Foreground lazy requests race the background sweep.
  for (int i = 0; i < kRows; i += 3) {
    ASSERT_TRUE(
        migrator->MigrateForPredicate(Eq(Col("id"), LitInt(i))).ok());
  }
  Stopwatch sw;
  while (!bg.finished() && sw.ElapsedMillis() < 10000) Clock::SleepMillis(5);
  EXPECT_EQ(catalog_.FindTable("dst")->NumLiveRows(),
            static_cast<uint64_t>(kRows));
}

}  // namespace
}  // namespace bullfrog
