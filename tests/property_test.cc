// Randomized property tests:
//  1. Index-aware scans return exactly the rows a brute-force filter
//     returns, for random data + random predicates (the planner may pick
//     any index; the result set must be identical).
//  2. The §2.1 predicate rewriter is sound: the old-table candidate set
//     selected by the rewritten predicate is a superset of the input rows
//     whose transformed output would match the original predicate.

#include <set>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/random.h"
#include "query/rewriter.h"
#include "query/scan.h"
#include "storage/table.h"

namespace bullfrog {
namespace {

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Builds a table t(a, b, c, s) with random contents and a random
  /// subset of secondary indexes.
  std::unique_ptr<Table> RandomTable(Rng* rng, int rows) {
    auto table = std::make_unique<Table>(
        SchemaBuilder("t")
            .AddColumn("a", ValueType::kInt64, false)
            .AddColumn("b", ValueType::kInt64)
            .AddColumn("c", ValueType::kInt64)
            .AddColumn("s", ValueType::kString)
            .SetPrimaryKey({"a"})
            .Build());
    if (rng->Bernoulli(0.5)) {
      EXPECT_TRUE(
          table->CreateIndex("by_b", {"b"}, false, IndexKind::kHash).ok());
    }
    if (rng->Bernoulli(0.5)) {
      EXPECT_TRUE(
          table->CreateIndex("by_bc", {"b", "c"}, false, IndexKind::kHash)
              .ok());
    }
    if (rng->Bernoulli(0.3)) {
      EXPECT_TRUE(
          table->CreateIndex("by_s", {"s"}, false, IndexKind::kOrdered)
              .ok());
    }
    for (int i = 0; i < rows; ++i) {
      EXPECT_TRUE(table
                      ->Insert(Tuple{
                          Value::Int(i), Value::Int(rng->UniformRange(0, 9)),
                          Value::Int(rng->UniformRange(0, 4)),
                          Value::Str(std::string(1, static_cast<char>(
                                                        'a' + rng->Uniform(
                                                                  5))))})
                      .ok());
    }
    return table;
  }

  /// A random predicate over {a, b, c, s}: conjunctions/disjunctions of
  /// comparisons, IN lists, IS NULL.
  ExprPtr RandomPredicate(Rng* rng, int depth = 0) {
    const int pick = static_cast<int>(rng->Uniform(depth >= 2 ? 5 : 7));
    switch (pick) {
      case 0:
        return Eq(Col("a"), LitInt(rng->UniformRange(0, 220)));
      case 1:
        return Eq(Col("b"), LitInt(rng->UniformRange(0, 11)));
      case 2:
        return And(Eq(Col("b"), LitInt(rng->UniformRange(0, 9))),
                   Eq(Col("c"), LitInt(rng->UniformRange(0, 5))));
      case 3:
        return Gt(Col("a"), LitInt(rng->UniformRange(0, 200)));
      case 4:
        return Expr::MakeIn(
            Col("s"), {Value::Str("a"), Value::Str("c"), Value::Str("e")});
      case 5:
        return And(RandomPredicate(rng, depth + 1),
                   RandomPredicate(rng, depth + 1));
      default:
        return Or(RandomPredicate(rng, depth + 1),
                  RandomPredicate(rng, depth + 1));
    }
  }

  Rng rng_{GetParam()};
};

TEST_P(PropertyTest, IndexScanMatchesBruteForce) {
  auto table = RandomTable(&rng_, 200);
  for (int trial = 0; trial < 50; ++trial) {
    ExprPtr pred = RandomPredicate(&rng_);
    auto via_planner = CollectWhere(*table, pred);
    ASSERT_TRUE(via_planner.ok()) << pred->ToString();
    std::set<RowId> planner_rids;
    for (auto& [rid, row] : *via_planner) planner_rids.insert(rid);

    auto bound = pred->Bind(table->schema());
    ASSERT_TRUE(bound.ok());
    std::set<RowId> brute_rids;
    table->Scan([&](RowId rid, const Tuple& row) {
      if ((*bound)->Matches(row)) brute_rids.insert(rid);
      return true;
    });
    EXPECT_EQ(planner_rids, brute_rids) << pred->ToString();
  }
}

TEST_P(PropertyTest, RewriterSelectsSupersetOfRelevantRows) {
  auto table = RandomTable(&rng_, 200);
  // Output schema: x <- a (pass-through), y <- b (pass-through),
  // z <- b + c (derived), s <- s (pass-through).
  ColumnProvenance prov;
  prov.AddPassThrough("x", "t", "a");
  prov.AddPassThrough("y", "t", "b");
  prov.AddDerived("z");
  prov.AddPassThrough("s", "t", "s");
  const TableSchema out_schema = SchemaBuilder("out")
                                     .AddColumn("x", ValueType::kInt64)
                                     .AddColumn("y", ValueType::kInt64)
                                     .AddColumn("z", ValueType::kInt64)
                                     .AddColumn("s", ValueType::kString)
                                     .Build();
  auto transform = [](const Tuple& in) {
    return Tuple{in[0], in[1], Value::Int(in[1].AsInt() + in[2].AsInt()),
                 in[3]};
  };

  auto random_output_predicate = [&](int depth) {
    std::function<ExprPtr(int)> gen = [&](int d) -> ExprPtr {
      const int pick = static_cast<int>(rng_.Uniform(d >= 2 ? 5 : 7));
      switch (pick) {
        case 0:
          return Eq(Col("x"), LitInt(rng_.UniformRange(0, 220)));
        case 1:
          return Eq(Col("y"), LitInt(rng_.UniformRange(0, 11)));
        case 2:
          return Gt(Col("z"), LitInt(rng_.UniformRange(0, 12)));  // Derived.
        case 3:
          return Expr::MakeIn(Col("s"),
                              {Value::Str("a"), Value::Str("b")});
        case 4:
          return Lt(Col("x"), LitInt(rng_.UniformRange(0, 200)));
        case 5:
          return And(gen(d + 1), gen(d + 1));
        default:
          return Or(gen(d + 1), gen(d + 1));
      }
    };
    return gen(depth);
  };

  for (int trial = 0; trial < 50; ++trial) {
    ExprPtr out_pred = random_output_predicate(0);
    RewrittenPredicates rewritten = RewritePredicate(out_pred, prov, {"t"});
    const ExprPtr& in_pred = rewritten.per_table.at("t");

    // Candidate set chosen by the rewritten predicate.
    std::set<RowId> candidates;
    auto scan = ScanWhere(*table, in_pred, [&](RowId rid, const Tuple&) {
      candidates.insert(rid);
      return true;
    });
    ASSERT_TRUE(scan.ok());

    // Rows whose *output image* matches the original predicate.
    auto bound_out = out_pred->Bind(out_schema);
    ASSERT_TRUE(bound_out.ok());
    std::set<RowId> relevant;
    table->Scan([&](RowId rid, const Tuple& row) {
      if ((*bound_out)->Matches(transform(row))) relevant.insert(rid);
      return true;
    });

    // Soundness: candidates ⊇ relevant. (Laziness wants the sets close;
    // correctness only needs the inclusion.)
    for (RowId rid : relevant) {
      ASSERT_TRUE(candidates.count(rid) > 0)
          << "row " << rid << " needed by " << out_pred->ToString()
          << " but excluded by "
          << (in_pred == nullptr ? "<full scan>" : in_pred->ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace bullfrog
