#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "query/expr.h"
#include "query/rewriter.h"
#include "query/scan.h"
#include "storage/table.h"

namespace bullfrog {
namespace {

TableSchema FlightsSchema() {
  return SchemaBuilder("flights")
      .AddColumn("flightid", ValueType::kString, /*nullable=*/false)
      .AddColumn("source", ValueType::kString)
      .AddColumn("dest", ValueType::kString)
      .AddColumn("capacity", ValueType::kInt64)
      .SetPrimaryKey({"flightid"})
      .Build();
}

Tuple Flight(const std::string& id, const std::string& src,
             const std::string& dst, int64_t cap) {
  return Tuple{Value::Str(id), Value::Str(src), Value::Str(dst),
               Value::Int(cap)};
}

TEST(ExprTest, EvalComparisons) {
  TableSchema s = FlightsSchema();
  Tuple row = Flight("AA101", "JFK", "LAX", 180);
  auto check = [&](ExprPtr e, bool expected) {
    auto bound = e->Bind(s);
    ASSERT_TRUE(bound.ok());
    EXPECT_EQ((*bound)->Matches(row), expected) << e->ToString();
  };
  check(Eq(Col("flightid"), LitStr("AA101")), true);
  check(Eq(Col("flightid"), LitStr("AA102")), false);
  check(Ne(Col("source"), LitStr("LAX")), true);
  check(Gt(Col("capacity"), LitInt(100)), true);
  check(Le(Col("capacity"), LitInt(100)), false);
  check(Ge(Col("capacity"), LitInt(180)), true);
  check(Lt(Col("capacity"), LitInt(180)), false);
}

TEST(ExprTest, BooleanConnectives) {
  TableSchema s = FlightsSchema();
  Tuple row = Flight("AA101", "JFK", "LAX", 180);
  auto eval = [&](ExprPtr e) {
    return (*e->Bind(s))->Matches(row);
  };
  EXPECT_TRUE(eval(And(Eq(Col("source"), LitStr("JFK")),
                       Eq(Col("dest"), LitStr("LAX")))));
  EXPECT_FALSE(eval(And(Eq(Col("source"), LitStr("JFK")),
                        Eq(Col("dest"), LitStr("SFO")))));
  EXPECT_TRUE(eval(Or(Eq(Col("dest"), LitStr("SFO")),
                      Eq(Col("dest"), LitStr("LAX")))));
  EXPECT_TRUE(eval(Not(Eq(Col("dest"), LitStr("SFO")))));
}

TEST(ExprTest, ArithmeticAndDerivedColumns) {
  TableSchema s = FlightsSchema();
  Tuple row = Flight("AA101", "JFK", "LAX", 180);
  ExprPtr empty_seats = Sub(Col("capacity"), LitInt(30));
  auto bound = empty_seats->Bind(s);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->Eval(row).AsInt(), 150);
  ExprPtr half = Div(Col("capacity"), LitInt(2));
  EXPECT_DOUBLE_EQ((*half->Bind(s))->Eval(row).AsDouble(), 90.0);
  ExprPtr times = Mul(Col("capacity"), LitInt(2));
  EXPECT_EQ((*times->Bind(s))->Eval(row).AsInt(), 360);
  ExprPtr plus = Add(Col("capacity"), LitInt(1));
  EXPECT_EQ((*plus->Bind(s))->Eval(row).AsInt(), 181);
}

TEST(ExprTest, DivisionByZeroIsNull) {
  TableSchema s = FlightsSchema();
  Tuple row = Flight("AA101", "JFK", "LAX", 180);
  ExprPtr e = Div(Col("capacity"), LitInt(0));
  EXPECT_TRUE((*e->Bind(s))->Eval(row).is_null());
}

TEST(ExprTest, ThreeValuedNullSemantics) {
  TableSchema s = SchemaBuilder("t")
                      .AddColumn("a", ValueType::kInt64)
                      .Build();
  Tuple row{Value::Null()};
  // NULL = 1 is NULL -> does not match.
  EXPECT_FALSE((*Eq(Col("a"), LitInt(1))->Bind(s))->Matches(row));
  // NOT (NULL = 1) is still NULL -> does not match.
  EXPECT_FALSE((*Not(Eq(Col("a"), LitInt(1)))->Bind(s))->Matches(row));
  // a IS NULL matches.
  EXPECT_TRUE((*Expr::MakeIsNull(Col("a"))->Bind(s))->Matches(row));
  // NULL OR true is true.
  EXPECT_TRUE((*Or(Eq(Col("a"), LitInt(1)),
                   Expr::MakeIsNull(Col("a")))->Bind(s))->Matches(row));
  // NULL AND false is false; NULL AND true is NULL (no match).
  EXPECT_FALSE(
      (*And(Eq(Col("a"), LitInt(1)), LitInt(1))->Bind(s))->Matches(row));
}

TEST(ExprTest, InList) {
  TableSchema s = FlightsSchema();
  Tuple row = Flight("AA101", "JFK", "LAX", 180);
  ExprPtr e = Expr::MakeIn(Col("dest"),
                           {Value::Str("SFO"), Value::Str("LAX")});
  EXPECT_TRUE((*e->Bind(s))->Matches(row));
  ExprPtr miss = Expr::MakeIn(Col("dest"), {Value::Str("SEA")});
  EXPECT_FALSE((*miss->Bind(s))->Matches(row));
}

TEST(ExprTest, BindRejectsUnknownColumn) {
  TableSchema s = FlightsSchema();
  EXPECT_FALSE(Eq(Col("nope"), LitInt(1))->Bind(s).ok());
}

TEST(ExprTest, CollectColumnsDeduplicates) {
  ExprPtr e = And(Eq(Col("a"), LitInt(1)),
                  Or(Eq(Col("b"), LitInt(2)), Eq(Col("a"), LitInt(3))));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b"}));
}

TEST(ExprTest, SplitAndJoinConjuncts) {
  ExprPtr e = And(And(Eq(Col("a"), LitInt(1)), Eq(Col("b"), LitInt(2))),
                  Eq(Col("c"), LitInt(3)));
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(e, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  ExprPtr joined = JoinConjuncts(conjuncts);
  ASSERT_NE(joined, nullptr);
  EXPECT_EQ(joined->kind(), ExprKind::kAnd);
  EXPECT_EQ(JoinConjuncts({}), nullptr);
  EXPECT_EQ(JoinConjuncts({conjuncts[0]}), conjuncts[0]);
}

TEST(ExprTest, MatchEqualityConjunctBothOrders) {
  std::string column;
  Value v;
  EXPECT_TRUE(MatchEqualityConjunct(Eq(Col("x"), LitInt(5)), &column, &v));
  EXPECT_EQ(column, "x");
  EXPECT_EQ(v.AsInt(), 5);
  EXPECT_TRUE(MatchEqualityConjunct(Eq(LitInt(6), Col("y")), &column, &v));
  EXPECT_EQ(column, "y");
  EXPECT_FALSE(MatchEqualityConjunct(Gt(Col("x"), LitInt(5)), &column, &v));
  EXPECT_FALSE(
      MatchEqualityConjunct(Eq(Col("x"), Col("y")), &column, &v));
}

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(FlightsSchema());
    ASSERT_TRUE(table_->CreateIndex("by_source", {"source"}, false,
                                    IndexKind::kHash)
                    .ok());
    ASSERT_TRUE(table_->Insert(Flight("AA101", "JFK", "LAX", 180)).ok());
    ASSERT_TRUE(table_->Insert(Flight("AA102", "JFK", "SFO", 150)).ok());
    ASSERT_TRUE(table_->Insert(Flight("UA900", "ORD", "LAX", 200)).ok());
  }
  std::unique_ptr<Table> table_;
};

TEST_F(ScanTest, NullPredicateScansAll) {
  auto rows = CollectWhere(*table_, nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(ScanTest, PkEqualityUsesIndex) {
  auto plan = PlanScan(*table_, Eq(Col("flightid"), LitStr("AA101")));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->used_index);
  EXPECT_EQ(plan->index_name, "pk_flights");
  EXPECT_EQ(plan->residual, nullptr);
  auto rows = CollectWhere(*table_, Eq(Col("flightid"), LitStr("AA101")));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
}

TEST_F(ScanTest, SecondaryIndexWithResidual) {
  ExprPtr pred = And(Eq(Col("source"), LitStr("JFK")),
                     Gt(Col("capacity"), LitInt(160)));
  auto plan = PlanScan(*table_, pred);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->used_index);
  EXPECT_EQ(plan->index_name, "by_source");
  ASSERT_NE(plan->residual, nullptr);
  auto rows = CollectWhere(*table_, pred);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front().second[0].AsString(), "AA101");
}

TEST_F(ScanTest, NonIndexedPredicateFallsBackToFullScan) {
  ExprPtr pred = Gt(Col("capacity"), LitInt(160));
  auto plan = PlanScan(*table_, pred);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->used_index);
  auto rows = CollectWhere(*table_, pred);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(ScanTest, UnknownColumnIsError) {
  EXPECT_FALSE(PlanScan(*table_, Eq(Col("bogus"), LitInt(1))).ok());
}

TEST_F(ScanTest, EarlyStopFromCallback) {
  int seen = 0;
  auto plan = ScanWhere(*table_, nullptr, [&](RowId, const Tuple&) {
    return ++seen < 2;
  });
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(seen, 2);
}

// --- Rewriter: the §2.1 view-expansion analog --------------------------

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The paper's flight example: FLEWONINFO(fid, flightdate,
    // passenger_count, empty_seats, ...) from FLIGHTS x FLEWON.
    prov_.AddPassThrough("fid", "flights", "flightid");
    prov_.AddPassThrough("fid", "flewon", "flightid");
    prov_.AddPassThrough("flightdate", "flewon", "flightdate");
    prov_.AddPassThrough("passenger_count", "flewon", "passenger_count");
    prov_.AddDerived("empty_seats");  // capacity - passenger_count.
  }
  ColumnProvenance prov_;
  std::vector<std::string> inputs_{"flights", "flewon"};
};

TEST_F(RewriterTest, JoinKeyPredicateReplicatedToBothInputs) {
  // SELECT * FROM flewoninfo WHERE fid = 'AA101' — the paper's example:
  // the filter lands on both flights and flewon.
  ExprPtr pred = Eq(Col("fid"), LitStr("AA101"));
  RewrittenPredicates out = RewritePredicate(pred, prov_, inputs_);
  ASSERT_NE(out.per_table.at("flights"), nullptr);
  ASSERT_NE(out.per_table.at("flewon"), nullptr);
  EXPECT_EQ(out.per_table.at("flights")->ToString(),
            "(flightid = 'AA101')");
  EXPECT_EQ(out.per_table.at("flewon")->ToString(), "(flightid = 'AA101')");
  EXPECT_EQ(out.dropped_conjuncts, 0u);
}

TEST_F(RewriterTest, SingleSourcePredicateLandsOnOneInput) {
  ExprPtr pred = And(Eq(Col("fid"), LitStr("AA101")),
                     Gt(Col("passenger_count"), LitInt(0)));
  RewrittenPredicates out = RewritePredicate(pred, prov_, inputs_);
  // flights gets only the fid conjunct; flewon gets both.
  std::vector<ExprPtr> flights_conjuncts;
  SplitConjuncts(out.per_table.at("flights"), &flights_conjuncts);
  EXPECT_EQ(flights_conjuncts.size(), 1u);
  std::vector<ExprPtr> flewon_conjuncts;
  SplitConjuncts(out.per_table.at("flewon"), &flewon_conjuncts);
  EXPECT_EQ(flewon_conjuncts.size(), 2u);
}

TEST_F(RewriterTest, DerivedColumnPredicateDropped) {
  // A filter on empty_seats cannot be pushed anywhere (worst case §2.4):
  // both candidate sets stay unfiltered supersets.
  ExprPtr pred = Gt(Col("empty_seats"), LitInt(10));
  RewrittenPredicates out = RewritePredicate(pred, prov_, inputs_);
  EXPECT_EQ(out.per_table.at("flights"), nullptr);
  EXPECT_EQ(out.per_table.at("flewon"), nullptr);
  EXPECT_EQ(out.dropped_conjuncts, 1u);
}

TEST_F(RewriterTest, MixedConjunctsPartiallyPushed) {
  ExprPtr pred = And(Eq(Col("fid"), LitStr("AA101")),
                     Gt(Col("empty_seats"), LitInt(10)));
  RewrittenPredicates out = RewritePredicate(pred, prov_, inputs_);
  EXPECT_NE(out.per_table.at("flights"), nullptr);
  EXPECT_EQ(out.dropped_conjuncts, 1u);
}

TEST_F(RewriterTest, OrRequiresAllBranchesRewritable) {
  // (fid = 'A' OR empty_seats > 3) cannot be pushed: narrowing by the
  // fid half alone would exclude relevant tuples.
  ExprPtr pred = Or(Eq(Col("fid"), LitStr("A")),
                    Gt(Col("empty_seats"), LitInt(3)));
  RewrittenPredicates out = RewritePredicate(pred, prov_, inputs_);
  EXPECT_EQ(out.per_table.at("flights"), nullptr);
  EXPECT_EQ(out.per_table.at("flewon"), nullptr);
  EXPECT_EQ(out.dropped_conjuncts, 1u);
}

TEST_F(RewriterTest, OrOfRewritableBranchesPushed) {
  ExprPtr pred = Or(Eq(Col("fid"), LitStr("A")), Eq(Col("fid"), LitStr("B")));
  RewrittenPredicates out = RewritePredicate(pred, prov_, inputs_);
  ASSERT_NE(out.per_table.at("flights"), nullptr);
  EXPECT_EQ(out.per_table.at("flights")->kind(), ExprKind::kOr);
}

TEST_F(RewriterTest, NullPredicateMeansEverythingRelevant) {
  RewrittenPredicates out = RewritePredicate(nullptr, prov_, inputs_);
  EXPECT_EQ(out.per_table.at("flights"), nullptr);
  EXPECT_EQ(out.per_table.at("flewon"), nullptr);
}

TEST_F(RewriterTest, RewriteExprForTableRenamesColumns) {
  ExprPtr e = Eq(Col("fid"), LitStr("X"));
  ExprPtr r = RewriteExprForTable(e, prov_, "flights");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->ToString(), "(flightid = 'X')");
  EXPECT_EQ(RewriteExprForTable(Col("flightdate"), prov_, "flights"),
            nullptr);
}

}  // namespace
}  // namespace bullfrog
