#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "common/random.h"
#include "storage/table.h"
#include "txn/lock_manager.h"
#include "txn/recovery.h"
#include "txn/txn_manager.h"
#include "txn/wal.h"

namespace bullfrog {
namespace {

TableSchema TestSchema() {
  return SchemaBuilder("t")
      .AddColumn("id", ValueType::kInt64, /*nullable=*/false)
      .AddColumn("v", ValueType::kInt64)
      .SetPrimaryKey({"id"})
      .Build();
}

Tuple Row(int64_t id, int64_t v) { return Tuple{Value::Int(id), Value::Int(v)}; }

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  LockKey key{&lm, 1};
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, key, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, key, LockMode::kShared));
  lm.ReleaseAll(1, {key});
  lm.ReleaseAll(2, {key});
}

TEST(LockManagerTest, ExclusiveExcludesYounger) {
  LockManager lm;
  LockKey key{&lm, 1};
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).ok());
  // Wait-die: txn 2 is younger than holder 1 -> dies immediately.
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kShared).IsTxnConflict());
  lm.ReleaseAll(1, {key});
}

TEST(LockManagerTest, OlderWaitsForRelease) {
  LockManager lm;
  LockKey key{&lm, 1};
  ASSERT_TRUE(lm.Acquire(5, key, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    // Txn 3 is older than holder 5 -> waits.
    EXPECT_TRUE(lm.Acquire(3, key, LockMode::kExclusive, 5000).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(5, {key});
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(3, {key});
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager lm;
  LockKey key{&lm, 9};
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  // Sole holder upgrade.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, key, LockMode::kExclusive));
  // Exclusive holder may re-acquire shared.
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  lm.ReleaseAll(1, {key});
  EXPECT_FALSE(lm.Holds(1, key, LockMode::kShared));
}

TEST(LockManagerTest, TimeoutExpires) {
  LockManager lm;
  LockKey key{&lm, 2};
  ASSERT_TRUE(lm.Acquire(10, key, LockMode::kExclusive).ok());
  // Older txn 5 waits but times out.
  EXPECT_TRUE(lm.Acquire(5, key, LockMode::kExclusive, 100).code() ==
              StatusCode::kTimedOut);
  lm.ReleaseAll(10, {key});
}

TEST(LockManagerTest, NoLostWakeupsUnderContention) {
  LockManager lm;
  LockKey key{&lm, 3};
  std::atomic<int> in_critical{0};
  std::atomic<int> completions{0};
  std::vector<std::thread> threads;
  // Older transactions (small ids) wait; this must always drain.
  for (uint64_t id = 1; id <= 8; ++id) {
    threads.emplace_back([&, id] {
      Status s = lm.Acquire(id, key, LockMode::kExclusive, 10000);
      if (!s.ok()) return;
      EXPECT_EQ(in_critical.fetch_add(1), 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_critical.fetch_sub(1);
      lm.ReleaseAll(id, {key});
      completions.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  // At least the oldest must get through; most should.
  EXPECT_GE(completions.load(), 1);
}

TEST(TxnManagerTest, CommitMakesChangesDurable) {
  TransactionManager tm;
  Table table(TestSchema());
  auto txn = tm.Begin();
  auto out = tm.Insert(txn.get(), &table, Row(1, 10));
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  Tuple row;
  ASSERT_TRUE(table.Read(out->rid, &row).ok());
  EXPECT_EQ(row[1].AsInt(), 10);
  EXPECT_EQ(tm.num_committed(), 1u);
  // The redo log holds the insert + commit records.
  EXPECT_EQ(tm.redo_log().size(), 2u);
}

TEST(TxnManagerTest, AbortUndoesInsert) {
  TransactionManager tm;
  Table table(TestSchema());
  auto txn = tm.Begin();
  auto out = tm.Insert(txn.get(), &table, Row(1, 10));
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(tm.Abort(txn.get()).ok());
  Tuple row;
  EXPECT_TRUE(table.Read(out->rid, &row).IsNotFound());
  EXPECT_EQ(table.NumLiveRows(), 0u);
  // Aborted work must not reach the redo log.
  EXPECT_EQ(tm.redo_log().size(), 0u);
  // The PK is free again.
  auto txn2 = tm.Begin();
  EXPECT_TRUE(tm.Insert(txn2.get(), &table, Row(1, 20)).ok());
  ASSERT_TRUE(tm.Commit(txn2.get()).ok());
}

TEST(TxnManagerTest, AbortUndoesUpdateAndDelete) {
  TransactionManager tm;
  Table table(TestSchema());
  auto setup = tm.Begin();
  auto a = tm.Insert(setup.get(), &table, Row(1, 10));
  auto b = tm.Insert(setup.get(), &table, Row(2, 20));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(tm.Commit(setup.get()).ok());

  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Update(txn.get(), &table, a->rid, Row(1, 11)).ok());
  ASSERT_TRUE(tm.Delete(txn.get(), &table, b->rid).ok());
  ASSERT_TRUE(tm.Abort(txn.get()).ok());

  Tuple row;
  ASSERT_TRUE(table.Read(a->rid, &row).ok());
  EXPECT_EQ(row[1].AsInt(), 10);
  ASSERT_TRUE(table.Read(b->rid, &row).ok());
  EXPECT_EQ(row[1].AsInt(), 20);
}

TEST(TxnManagerTest, AbortUndoesInReverseOrder) {
  TransactionManager tm;
  Table table(TestSchema());
  auto setup = tm.Begin();
  auto a = tm.Insert(setup.get(), &table, Row(1, 0));
  ASSERT_TRUE(tm.Commit(setup.get()).ok());

  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Update(txn.get(), &table, a->rid, Row(1, 1)).ok());
  ASSERT_TRUE(tm.Update(txn.get(), &table, a->rid, Row(1, 2)).ok());
  ASSERT_TRUE(tm.Abort(txn.get()).ok());
  Tuple row;
  ASSERT_TRUE(table.Read(a->rid, &row).ok());
  EXPECT_EQ(row[1].AsInt(), 0);
}

TEST(TxnManagerTest, WriteConflictTriggersWaitDie) {
  TransactionManager tm;
  Table table(TestSchema());
  auto setup = tm.Begin();
  auto a = tm.Insert(setup.get(), &table, Row(1, 0));
  ASSERT_TRUE(tm.Commit(setup.get()).ok());

  auto older = tm.Begin();
  auto younger = tm.Begin();
  ASSERT_GT(younger->id(), older->id());
  ASSERT_TRUE(tm.Update(older.get(), &table, a->rid, Row(1, 1)).ok());
  // Younger writer dies immediately.
  Tuple row;
  EXPECT_TRUE(
      tm.Read(younger.get(), &table, a->rid, &row, true).IsTxnConflict());
  ASSERT_TRUE(tm.Abort(younger.get()).ok());
  ASSERT_TRUE(tm.Commit(older.get()).ok());
}

TEST(TxnManagerTest, CommitAndAbortHooksFire) {
  TransactionManager tm;
  int committed = 0, aborted = 0;
  auto t1 = tm.Begin();
  t1->OnCommit([&] { ++committed; });
  t1->OnAbort([&] { ++aborted; });
  ASSERT_TRUE(tm.Commit(t1.get()).ok());
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 0);

  auto t2 = tm.Begin();
  t2->OnCommit([&] { ++committed; });
  t2->OnAbort([&] { ++aborted; });
  ASSERT_TRUE(tm.Abort(t2.get()).ok());
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 1);
}

TEST(TxnManagerTest, DoubleCommitRejected) {
  TransactionManager tm;
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  EXPECT_FALSE(tm.Commit(txn.get()).ok());
  EXPECT_FALSE(tm.Abort(txn.get()).ok());
}

TEST(TxnManagerTest, ConcurrentTransfersPreserveInvariant) {
  // Classic bank-transfer invariant under wait-die 2PL: total balance is
  // conserved across concurrent read-modify-write transactions.
  TransactionManager tm;
  Table table(TestSchema());
  constexpr int kAccounts = 10;
  constexpr int64_t kInitial = 1000;
  {
    auto setup = tm.Begin();
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(tm.Insert(setup.get(), &table, Row(i, kInitial)).ok());
    }
    ASSERT_TRUE(tm.Commit(setup.get()).ok());
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(static_cast<uint64_t>(w) + 99);
      for (int i = 0; i < 400; ++i) {
        const RowId from = rng.Uniform(kAccounts);
        const RowId to = (from + 1 + rng.Uniform(kAccounts - 1)) % kAccounts;
        auto txn = tm.Begin();
        Tuple a, b;
        Status s = tm.Read(txn.get(), &table, from, &a, true);
        if (s.ok()) s = tm.Read(txn.get(), &table, to, &b, true);
        if (s.ok()) {
          s = tm.Update(txn.get(), &table, from,
                        Row(a[0].AsInt(), a[1].AsInt() - 1));
        }
        if (s.ok()) {
          s = tm.Update(txn.get(), &table, to,
                        Row(b[0].AsInt(), b[1].AsInt() + 1));
        }
        if (s.ok()) {
          ASSERT_TRUE(tm.Commit(txn.get()).ok());
        } else {
          ASSERT_TRUE(s.IsRetryable()) << s.ToString();
          ASSERT_TRUE(tm.Abort(txn.get()).ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  int64_t total = 0;
  table.Scan([&](RowId, const Tuple& row) {
    total += row[1].AsInt();
    return true;
  });
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(RedoLogTest, AppendAndReplayOrder) {
  RedoLog log;
  LogRecord r1;
  r1.op = LogOp::kInsert;
  r1.table = "t";
  r1.rid = 1;
  log.AppendCommitted(7, {r1});
  std::vector<LogOp> ops;
  std::vector<uint64_t> txns;
  log.Replay([&](const LogRecord& r) {
    ops.push_back(r.op);
    txns.push_back(r.txn_id);
  });
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], LogOp::kInsert);
  EXPECT_EQ(ops[1], LogOp::kCommit);
  EXPECT_EQ(txns[0], 7u);
  EXPECT_EQ(txns[1], 7u);
}

TEST(RedoLogTest, EmptyCommitSkipsSinkAndCommitRecord) {
  RedoLog log;
  std::atomic<int> sink_calls{0};
  log.SetSink([&](const std::vector<LogRecord>&) {
    sink_calls.fetch_add(1);
    return Status::OK();
  });
  // A read-only transaction has nothing to make durable: no commit
  // record, no sink call (and therefore no fsync for a SELECT).
  CommitTicket ticket;
  ASSERT_TRUE(log.AppendCommitted(9, {}, &ticket).ok());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(sink_calls.load(), 0);
  EXPECT_EQ(ticket.lsn, 0u);
}

TEST(RedoLogTest, SinkFailurePropagatesAndNothingIsPublished) {
  RedoLog log;
  log.SetSink([](const std::vector<LogRecord>&) {
    return Status::Internal("disk full");
  });
  LogRecord r;
  r.op = LogOp::kInsert;
  r.table = "t";
  Status st = log.AppendCommitted(3, {r});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("disk full"), std::string::npos);
  // Failed appends must never become visible to readers / replication.
  EXPECT_EQ(log.size(), 0u);
}

TEST(RedoLogTest, LsnOrderedAcksUnderConcurrentCommitters) {
  // 16 committers race through the group-commit writer; acks must be
  // released strictly in LSN order (ack_seq order == lsn order), every
  // record must be published, and no two commits may share an LSN.
  RedoLog log;
  std::atomic<int> sink_calls{0};
  log.SetSink([&](const std::vector<LogRecord>& batch) {
    sink_calls.fetch_add(1);
    EXPECT_FALSE(batch.empty());
    return Status::OK();
  });
  constexpr int kThreads = 16;
  constexpr int kCommitsPerThread = 25;
  std::vector<CommitTicket> tickets(kThreads * kCommitsPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        LogRecord r;
        r.op = LogOp::kInsert;
        r.table = "t";
        r.rid = static_cast<RowId>(t * kCommitsPerThread + i);
        ASSERT_TRUE(log.AppendCommitted(static_cast<uint64_t>(t + 1), {r},
                                        &tickets[t * kCommitsPerThread + i])
                        .ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every commit wrote its record + a commit record.
  EXPECT_EQ(log.size(), static_cast<size_t>(kThreads * kCommitsPerThread * 2));
  // Group commit must have batched at least some commits into shared
  // sink calls (with 16 threads racing one writer this is overwhelmingly
  // likely; equality would mean zero batching ever happened).
  EXPECT_LE(sink_calls.load(), kThreads * kCommitsPerThread);

  std::sort(tickets.begin(), tickets.end(),
            [](const CommitTicket& a, const CommitTicket& b) {
              return a.ack_seq < b.ack_seq;
            });
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_GT(tickets[i].lsn, 0u);
    if (i > 0) {
      // Strict: distinct commits get distinct LSNs, released in order.
      EXPECT_GT(tickets[i].ack_seq, tickets[i - 1].ack_seq);
      EXPECT_GT(tickets[i].lsn, tickets[i - 1].lsn);
    }
  }
}

TEST(RedoLogTest, ReadersDoNotBlockWhileSinkIsSyncing) {
  // Regression for the PR-5 behavior where the sink ran under the log
  // mutex: a slow fsync stalled every ReadFrom/Replay/size caller
  // (replication tails, recovery). Here the sink parks mid-"fsync" and
  // readers must still complete — and must NOT see the in-flight records
  // (publish-after-durable).
  RedoLog log;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool in_sink = false;
  bool release_sink = false;
  log.SetSink([&](const std::vector<LogRecord>&) {
    std::unique_lock lock(gate_mu);
    in_sink = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release_sink; });
    return Status::OK();
  });

  std::thread committer([&] {
    LogRecord r;
    r.op = LogOp::kInsert;
    r.table = "t";
    ASSERT_TRUE(log.AppendCommitted(1, {r}).ok());
  });
  {
    std::unique_lock lock(gate_mu);
    gate_cv.wait(lock, [&] { return in_sink; });
  }
  // The sink is parked mid-sync. Readers must return promptly and see an
  // empty log (the batch is not durable yet, so it is not visible).
  std::vector<LogRecord> out;
  EXPECT_EQ(log.ReadFrom(0, 100, &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(log.size(), 0u);
  size_t replayed = 0;
  log.Replay([&](const LogRecord&) { ++replayed; });
  EXPECT_EQ(replayed, 0u);

  {
    std::lock_guard lock(gate_mu);
    release_sink = true;
  }
  gate_cv.notify_all();
  committer.join();
  EXPECT_EQ(log.size(), 2u);
}

TEST(RedoLogTest, WaitForSizeWakesOnAppend) {
  RedoLog log;
  std::thread waiter([&] {
    // Generous timeout; the appender below should wake us long before.
    EXPECT_GE(log.WaitForSize(0, 10000), 1u);
  });
  LogRecord r;
  r.op = LogOp::kInsert;
  r.table = "t";
  ASSERT_TRUE(log.AppendCommitted(1, {r}).ok());
  waiter.join();
  EXPECT_EQ(log.WaitForSize(0, 0), 2u);  // Non-blocking snapshot.
}

TEST(TxnManagerTest, FailedDurableAppendRollsBackInsteadOfAcking) {
  TransactionManager tm;
  tm.redo_log().SetSink([](const std::vector<LogRecord>&) {
    return Status::Internal("injected sink failure");
  });
  Table table(TestSchema());
  auto txn = tm.Begin();
  auto out = tm.Insert(txn.get(), &table, Row(1, 10));
  ASSERT_TRUE(out.ok());
  Status st = tm.Commit(txn.get());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected sink failure"), std::string::npos);
  // The commit never hit disk, so it must have been rolled back exactly
  // like an abort: row gone, nothing in the log, counted as aborted.
  Tuple row;
  EXPECT_TRUE(table.Read(out->rid, &row).IsNotFound());
  EXPECT_EQ(table.NumLiveRows(), 0u);
  EXPECT_EQ(tm.redo_log().size(), 0u);
  EXPECT_EQ(tm.num_committed(), 0u);
  EXPECT_EQ(tm.num_aborted(), 1u);
  // Locks were released: a new transaction can reuse the PK.
  auto txn2 = tm.Begin();
  EXPECT_TRUE(tm.Insert(txn2.get(), &table, Row(1, 20)).ok());
  EXPECT_FALSE(tm.Commit(txn2.get()).ok());  // Sink still failing.
  EXPECT_EQ(tm.num_aborted(), 2u);
}

class FakeTarget : public TrackerRecoveryTarget {
 public:
  void MarkMigratedFromLog(const Tuple& unit_key) override {
    keys.push_back(unit_key);
  }
  std::vector<Tuple> keys;
};

TEST(RecoveryTest, OnlyCommittedMarksApplied) {
  RedoLog log;
  LogRecord mark;
  mark.op = LogOp::kMigrationMark;
  mark.table = "tracker_a";
  mark.after = Tuple{Value::Int(4)};
  log.AppendCommitted(1, {mark});

  FakeTarget target;
  RecoverTrackerState(log, {{"tracker_a", &target}});
  ASSERT_EQ(target.keys.size(), 1u);
  EXPECT_EQ(target.keys[0][0].AsInt(), 4);
}

TEST(RecoveryTest, UnknownTrackerIdsSkipped) {
  RedoLog log;
  LogRecord mark;
  mark.op = LogOp::kMigrationMark;
  mark.table = "gone";
  mark.after = Tuple{Value::Int(1)};
  log.AppendCommitted(1, {mark});
  FakeTarget target;
  RecoverTrackerState(log, {{"other", &target}});
  EXPECT_TRUE(target.keys.empty());
}

TEST(RecoveryTest, MigrationMarksRecordedOnlyOnCommit) {
  TransactionManager tm;
  // Aborted transaction: mark is buffered but never logged.
  auto t1 = tm.Begin();
  tm.LogMigrationMark(t1.get(), "tr", Tuple{Value::Int(1)});
  ASSERT_TRUE(tm.Abort(t1.get()).ok());
  auto t2 = tm.Begin();
  tm.LogMigrationMark(t2.get(), "tr", Tuple{Value::Int(2)});
  ASSERT_TRUE(tm.Commit(t2.get()).ok());
  FakeTarget target;
  RecoverTrackerState(tm.redo_log(), {{"tr", &target}});
  ASSERT_EQ(target.keys.size(), 1u);
  EXPECT_EQ(target.keys[0][0].AsInt(), 2);
}

}  // namespace
}  // namespace bullfrog
