#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "query/scan.h"
#include "tpcc/cols.h"
#include "tpcc/loader.h"
#include "tpcc/schema.h"
#include "tpcc/transactions.h"
#include "tpcc/workload.h"

namespace bullfrog::tpcc {
namespace {

class TpccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scale_ = Scale::Small();
    ASSERT_TRUE(CreateTpccTables(&db_).ok());
    ASSERT_TRUE(LoadTpcc(&db_, scale_).ok());
    txns_ = std::make_unique<Transactions>(&db_, scale_);
  }

  uint64_t Count(const char* table) {
    return db_.catalog().FindTable(table)->NumLiveRows();
  }

  /// TPC-C consistency condition 1-ish: for every district,
  /// d_next_o_id - 1 == max(o_id) == max(no_o_id is <= max o_id).
  void CheckDistrictOrderConsistency() {
    Table* district = db_.catalog().FindTable(kDistrict);
    Table* orders = db_.catalog().FindTable(kOrders);
    district->Scan([&](RowId, const Tuple& d) {
      const int64_t w = d[col::dist::kWId].AsInt();
      const int64_t did = d[col::dist::kId].AsInt();
      const int64_t next_o = d[col::dist::kNextOId].AsInt();
      int64_t max_o = 0;
      orders->Scan([&](RowId, const Tuple& o) {
        if (o[col::ord::kWId].AsInt() == w &&
            o[col::ord::kDId].AsInt() == did) {
          max_o = std::max(max_o, o[col::ord::kId].AsInt());
        }
        return true;
      });
      EXPECT_EQ(next_o - 1, max_o) << "district (" << w << "," << did << ")";
      return true;
    });
  }

  Scale scale_;
  Database db_;
  std::unique_ptr<Transactions> txns_;
};

TEST_F(TpccTest, LoaderPopulatesSpecCardinalities) {
  EXPECT_EQ(Count(kWarehouse), static_cast<uint64_t>(scale_.warehouses));
  EXPECT_EQ(Count(kDistrict),
            static_cast<uint64_t>(scale_.warehouses *
                                  scale_.districts_per_warehouse));
  EXPECT_EQ(Count(kCustomer), static_cast<uint64_t>(scale_.total_customers()));
  EXPECT_EQ(Count(kItem), static_cast<uint64_t>(scale_.items));
  EXPECT_EQ(Count(kStock),
            static_cast<uint64_t>(scale_.warehouses * scale_.items));
  EXPECT_EQ(Count(kOrders),
            static_cast<uint64_t>(scale_.warehouses *
                                  scale_.districts_per_warehouse *
                                  scale_.orders_per_district));
  EXPECT_EQ(Count(kNewOrder),
            static_cast<uint64_t>(scale_.warehouses *
                                  scale_.districts_per_warehouse *
                                  scale_.undelivered_orders_per_district));
  EXPECT_EQ(Count(kHistory), Count(kCustomer));
  EXPECT_GT(Count(kOrderLine), Count(kOrders) * 4);  // >= 5 lines/order.
  CheckDistrictOrderConsistency();
}

TEST_F(TpccTest, LoaderIsDeterministic) {
  Database db2;
  ASSERT_TRUE(CreateTpccTables(&db2).ok());
  ASSERT_TRUE(LoadTpcc(&db2, scale_).ok());
  EXPECT_EQ(Count(kOrderLine),
            db2.catalog().FindTable(kOrderLine)->NumLiveRows());
}

TEST_F(TpccTest, NewOrderCreatesOrderRows) {
  const uint64_t orders_before = Count(kOrders);
  const uint64_t lines_before = Count(kOrderLine);
  Transactions::NewOrderParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 1;
  p.lines = {{1, 1, 5}, {2, 1, 3}};
  ASSERT_TRUE(txns_->NewOrder(p).ok());
  EXPECT_EQ(Count(kOrders), orders_before + 1);
  EXPECT_EQ(Count(kOrderLine), lines_before + 2);
  EXPECT_EQ(Count(kNewOrder),
            static_cast<uint64_t>(scale_.warehouses *
                                  scale_.districts_per_warehouse *
                                  scale_.undelivered_orders_per_district) +
                1);
  CheckDistrictOrderConsistency();
}

TEST_F(TpccTest, NewOrderUpdatesStockQuantity) {
  auto s = db_.BeginSession({kStock});
  auto before = db_.Select(&s, kStock,
                           And(Eq(Col("s_w_id"), LitInt(1)),
                               Eq(Col("s_i_id"), LitInt(7))));
  ASSERT_TRUE(before.ok());
  const int64_t q_before =
      (*before)[0].second[col::stk::kQuantity].AsInt();
  ASSERT_TRUE(db_.Commit(&s).ok());

  Transactions::NewOrderParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 2;
  p.lines = {{7, 1, 4}};
  ASSERT_TRUE(txns_->NewOrder(p).ok());

  auto s2 = db_.BeginSession({kStock});
  auto after = db_.Select(&s2, kStock,
                          And(Eq(Col("s_w_id"), LitInt(1)),
                              Eq(Col("s_i_id"), LitInt(7))));
  ASSERT_TRUE(after.ok());
  const int64_t q_after = (*after)[0].second[col::stk::kQuantity].AsInt();
  ASSERT_TRUE(db_.Commit(&s2).ok());
  // Either decremented by 4 or wrapped (+91-4).
  EXPECT_TRUE(q_after == q_before - 4 || q_after == q_before - 4 + 91)
      << q_before << " -> " << q_after;
}

TEST_F(TpccTest, NewOrderRollbackLeavesNoPartialState) {
  const uint64_t orders_before = Count(kOrders);
  const uint64_t lines_before = Count(kOrderLine);
  Transactions::NewOrderParams p;
  p.w_id = 1;
  p.d_id = 2;
  p.c_id = 3;
  p.lines = {{1, 1, 1}, {2, 1, 1}};
  p.rollback = true;  // Last line gets an invalid item.
  EXPECT_FALSE(txns_->NewOrder(p).ok());
  EXPECT_EQ(Count(kOrders), orders_before);
  EXPECT_EQ(Count(kOrderLine), lines_before);
  CheckDistrictOrderConsistency();
}

TEST_F(TpccTest, PaymentUpdatesBalancesAndHistory) {
  const uint64_t history_before = Count(kHistory);
  auto s = db_.BeginSession({kCustomer});
  auto before = db_.Select(
      &s, kCustomer,
      And(And(Eq(Col("c_w_id"), LitInt(1)), Eq(Col("c_d_id"), LitInt(1))),
          Eq(Col("c_id"), LitInt(5))));
  ASSERT_TRUE(before.ok());
  const double bal_before =
      (*before)[0].second[col::cust::kBalance].AsDouble();
  ASSERT_TRUE(db_.Commit(&s).ok());

  Transactions::PaymentParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_w_id = 1;
  p.c_d_id = 1;
  p.c_id = 5;
  p.amount = 123.0;
  ASSERT_TRUE(txns_->Payment(p).ok());

  auto s2 = db_.BeginSession({kCustomer});
  auto after = db_.Select(
      &s2, kCustomer,
      And(And(Eq(Col("c_w_id"), LitInt(1)), Eq(Col("c_d_id"), LitInt(1))),
          Eq(Col("c_id"), LitInt(5))));
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ((*after)[0].second[col::cust::kBalance].AsDouble(),
                   bal_before - 123.0);
  ASSERT_TRUE(db_.Commit(&s2).ok());
  EXPECT_EQ(Count(kHistory), history_before + 1);
}

TEST_F(TpccTest, PaymentByLastNameResolvesMiddleCustomer) {
  // Every customer in the Small scale has a syllable name; pick the name
  // of customer (1,1,1) and pay by name.
  auto s = db_.BeginSession({kCustomer});
  auto rows = db_.Select(
      &s, kCustomer,
      And(And(Eq(Col("c_w_id"), LitInt(1)), Eq(Col("c_d_id"), LitInt(1))),
          Eq(Col("c_id"), LitInt(1))));
  ASSERT_TRUE(rows.ok());
  const std::string last = (*rows)[0].second[col::cust::kLast].AsString();
  ASSERT_TRUE(db_.Commit(&s).ok());

  Transactions::PaymentParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_w_id = 1;
  p.c_d_id = 1;
  p.by_last_name = true;
  p.c_last = last;
  p.amount = 10.0;
  EXPECT_TRUE(txns_->Payment(p).ok());
}

TEST_F(TpccTest, OrderStatusReadsLastOrder) {
  Transactions::OrderStatusParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 1;
  EXPECT_TRUE(txns_->OrderStatus(p).ok());
}

TEST_F(TpccTest, DeliveryDrainsOldestNewOrders) {
  const uint64_t no_before = Count(kNewOrder);
  auto count_delivered = [&] {
    // Orders without a carrier are undelivered; loader-created carriers
    // are random, so count NULL carriers instead.
    Table* orders = db_.catalog().FindTable(kOrders);
    int64_t undelivered = 0;
    orders->Scan([&](RowId, const Tuple& o) {
      if (o[col::ord::kCarrierId].is_null()) ++undelivered;
      return true;
    });
    return undelivered;
  };
  const int64_t undelivered_before = count_delivered();
  Transactions::DeliveryParams p;
  p.w_id = 1;
  p.carrier_id = 3;
  ASSERT_TRUE(txns_->Delivery(p).ok());
  // One order delivered per district (that had undelivered orders).
  EXPECT_EQ(Count(kNewOrder),
            no_before - static_cast<uint64_t>(
                            scale_.districts_per_warehouse));
  EXPECT_EQ(count_delivered(),
            undelivered_before - scale_.districts_per_warehouse);
}

TEST_F(TpccTest, DeliveryIsIdempotentWhenDrained) {
  Transactions::DeliveryParams p;
  p.w_id = 1;
  p.carrier_id = 1;
  for (int i = 0; i < scale_.undelivered_orders_per_district + 2; ++i) {
    ASSERT_TRUE(txns_->Delivery(p).ok());
  }
  EXPECT_EQ(Count(kNewOrder), 0u);
  // Further deliveries are no-ops, not errors.
  EXPECT_TRUE(txns_->Delivery(p).ok());
}

TEST_F(TpccTest, StockLevelRuns) {
  Transactions::StockLevelParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.threshold = 15;
  EXPECT_TRUE(txns_->StockLevel(p).ok());
}

TEST_F(TpccTest, WorkloadGeneratorMixMatchesSpec) {
  WorkloadGenerator gen(scale_, 7);
  int counts[5] = {0, 0, 0, 0, 0};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<int>(gen.NextType())]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.45, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.43, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.04, 0.005);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.04, 0.005);
  EXPECT_NEAR(counts[4] / static_cast<double>(kDraws), 0.04, 0.005);
}

TEST_F(TpccTest, WorkloadGeneratorParamsInRange) {
  WorkloadGenerator gen(scale_, 7);
  for (int i = 0; i < 1000; ++i) {
    auto no = gen.GenNewOrder();
    ASSERT_GE(no.w_id, 1);
    ASSERT_LE(no.w_id, scale_.warehouses);
    ASSERT_GE(no.d_id, 1);
    ASSERT_LE(no.d_id, scale_.districts_per_warehouse);
    ASSERT_GE(no.c_id, 1);
    ASSERT_LE(no.c_id, scale_.customers_per_district);
    ASSERT_GE(no.lines.size(), 5u);
    ASSERT_LE(no.lines.size(), 15u);
    for (const auto& line : no.lines) {
      ASSERT_GE(line.item_id, 1);
      ASSERT_LE(line.item_id, scale_.items);
    }
  }
}

TEST_F(TpccTest, HotSetRestrictsCustomerChoice) {
  WorkloadGenerator gen(scale_, 7);
  gen.set_customer_hot_set(5);
  // The district-rotating mapping spreads the 5 hot records over the
  // Small scale's 2 districts: customers 1..3 of (1,1) and 1..2 of (1,2).
  for (int i = 0; i < 200; ++i) {
    auto no = gen.GenNewOrder();
    EXPECT_EQ(no.w_id, 1);
    EXPECT_LE(no.d_id, 2);
    EXPECT_LE(no.c_id, 3);
  }
}

TEST_F(TpccTest, SequentialCursorCoversEveryCustomerOnce) {
  WorkloadGenerator gen(scale_, 7);
  std::atomic<int64_t> cursor{0};
  gen.set_sequential_customers(&cursor);
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
  const int total = scale_.total_customers();
  for (int i = 0; i < total; ++i) {
    auto no = gen.GenNewOrder();
    seen.insert({no.w_id, no.d_id, no.c_id});
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(total));
}

TEST_F(TpccTest, MixedWorkloadPreservesConsistency) {
  WorkloadGenerator gen(scale_, 99);
  int committed = 0;
  for (int i = 0; i < 300; ++i) {
    Status s = gen.Execute(txns_.get(), gen.NextType());
    if (s.ok()) {
      ++committed;
    } else {
      ASSERT_TRUE(s.IsRetryable() || s.IsConstraintViolation())
          << s.ToString();
    }
  }
  EXPECT_GT(committed, 250);
  CheckDistrictOrderConsistency();
}

}  // namespace
}  // namespace bullfrog::tpcc
