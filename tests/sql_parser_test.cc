#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/token.h"

namespace bullfrog::sql {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE x = 'it''s' -- c\n;");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> texts;
  for (const Token& t : *tokens) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"SELECT", "a", ",", "b2",
                                             "FROM", "t", "WHERE", "x", "=",
                                             "it's", ";", ""}));
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[9].type, TokenType::kString);
}

TEST(TokenizerTest, NumbersAndOperators) {
  auto tokens = Tokenize("1 2.5 <= >= <> != .5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[2].text, "<=");
  EXPECT_EQ((*tokens)[3].text, ">=");
  EXPECT_EQ((*tokens)[4].text, "<>");
  EXPECT_EQ((*tokens)[5].text, "<>");  // != normalizes.
  EXPECT_EQ((*tokens)[6].type, TokenType::kFloat);
}

TEST(TokenizerTest, CaseNormalization) {
  auto tokens = Tokenize("Select FooBar");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "foobar");
}

TEST(TokenizerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
}

TEST(ParserTest, SelectBasics) {
  auto stmt = ParseSql("SELECT a, b FROM t WHERE a = 1 AND b <> 'x'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStatement& s = *stmt->select;
  EXPECT_FALSE(s.star);
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].name, "a");
  EXPECT_TRUE(s.items[0].is_bare_column);
  EXPECT_EQ(s.from_tables, std::vector<std::string>{"t"});
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind(), ExprKind::kAnd);
}

TEST(ParserTest, SelectStarAndAliases) {
  auto star = ParseSql("SELECT * FROM t");
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(star->select->star);

  auto alias = ParseSql("SELECT a AS x, a + 1 AS y FROM t");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(alias->select->items[0].name, "x");
  EXPECT_EQ(alias->select->items[1].name, "y");
  EXPECT_FALSE(alias->select->items[1].is_bare_column);
}

TEST(ParserTest, QualifiedColumnsAndPrecedence) {
  auto stmt = ParseSql(
      "SELECT t.a FROM t WHERE a + 2 * b >= 10 OR NOT c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->column_name(), "t.a");
  // (a + (2*b)) >= 10 OR (NOT (c = 3))
  const ExprPtr& w = stmt->select->where;
  ASSERT_EQ(w->kind(), ExprKind::kOr);
  EXPECT_EQ(w->children()[0]->kind(), ExprKind::kCompare);
  EXPECT_EQ(w->children()[0]->children()[0]->kind(), ExprKind::kArith);
  EXPECT_EQ(w->children()[1]->kind(), ExprKind::kNot);
}

TEST(ParserTest, InAndIsNull) {
  auto stmt = ParseSql(
      "SELECT a FROM t WHERE a IN (1, 2, 3) AND b IS NULL AND c IS NOT "
      "NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(stmt->select->where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->kind(), ExprKind::kIn);
  EXPECT_EQ(conjuncts[0]->in_list().size(), 3u);
  EXPECT_EQ(conjuncts[1]->kind(), ExprKind::kIsNull);
  EXPECT_EQ(conjuncts[2]->kind(), ExprKind::kNot);
}

TEST(ParserTest, NegativeNumbersAndStrings) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a = -5 AND b = -2.5");
  ASSERT_TRUE(stmt.ok());
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(stmt->select->where, &conjuncts);
  EXPECT_EQ(conjuncts[0]->children()[1]->constant().AsInt(), -5);
  EXPECT_DOUBLE_EQ(conjuncts[1]->children()[1]->constant().AsDouble(), -2.5);
}

TEST(ParserTest, Insert) {
  auto stmt = ParseSql(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert->table, "t");
  EXPECT_EQ(stmt->insert->columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_EQ(stmt->insert->rows[0].size(), 2u);
}

TEST(ParserTest, UpdateAndDelete) {
  auto up = ParseSql("UPDATE t SET a = a + 1, b = 'y' WHERE a < 10");
  ASSERT_TRUE(up.ok());
  ASSERT_EQ(up->kind, Statement::Kind::kUpdate);
  EXPECT_EQ(up->update->assignments.size(), 2u);
  ASSERT_NE(up->update->where, nullptr);

  auto del = ParseSql("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(del.ok());
  ASSERT_EQ(del->kind, Statement::Kind::kDelete);
}

TEST(ParserTest, CreateTable) {
  auto stmt = ParseSql(
      "CREATE TABLE flights (flightid CHAR(6) PRIMARY KEY, source CHAR(3), "
      "capacity INT NOT NULL, tax DOUBLE, ts TIMESTAMP)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  const TableSchema& schema = stmt->create_table->schema;
  EXPECT_EQ(schema.name(), "flights");
  EXPECT_EQ(schema.num_columns(), 5u);
  EXPECT_EQ(schema.primary_key(), std::vector<std::string>{"flightid"});
  EXPECT_EQ(schema.column(0).type, ValueType::kString);
  EXPECT_FALSE(schema.column(0).nullable);  // PK column.
  EXPECT_EQ(schema.column(2).type, ValueType::kInt64);
  EXPECT_FALSE(schema.column(2).nullable);
  EXPECT_EQ(schema.column(3).type, ValueType::kDouble);
  EXPECT_EQ(schema.column(4).type, ValueType::kTimestamp);
}

TEST(ParserTest, CreateTableWithConstraintClauses) {
  auto stmt = ParseSql(
      "CREATE TABLE c (a INT NOT NULL, b INT, e TEXT, PRIMARY KEY (a), "
      "UNIQUE (e), FOREIGN KEY (b) REFERENCES p (id))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const TableSchema& schema = stmt->create_table->schema;
  EXPECT_EQ(schema.primary_key(), std::vector<std::string>{"a"});
  ASSERT_EQ(schema.unique_constraints().size(), 1u);
  EXPECT_EQ(schema.unique_constraints()[0].columns,
            std::vector<std::string>{"e"});
  ASSERT_EQ(schema.foreign_keys().size(), 1u);
  EXPECT_EQ(schema.foreign_keys()[0].parent_table, "p");
}

TEST(ParserTest, CreateIndex) {
  auto stmt = ParseSql("CREATE UNIQUE INDEX idx ON t (a, b)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateIndex);
  EXPECT_TRUE(stmt->create_index->unique);
  EXPECT_EQ(stmt->create_index->columns,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, CreateTableAsSelect) {
  auto stmt = ParseSql(
      "CREATE TABLE flewoninfo PRIMARY KEY (fid, flightdate) AS ("
      "SELECT f.flightid AS fid, flightdate, passenger_count, "
      "capacity - passenger_count AS empty_seats, "
      "CAST(NULL AS TIMESTAMP) AS actual_departure_time "
      "FROM flights f, flewon fi WHERE f.flightid = fi.flightid)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTableAs);
  const CreateTableAsStatement& cta = *stmt->create_table_as;
  EXPECT_EQ(cta.table, "flewoninfo");
  EXPECT_EQ(cta.primary_key, (std::vector<std::string>{"fid", "flightdate"}));
  EXPECT_EQ(cta.select.from_tables,
            (std::vector<std::string>{"flights", "flewon"}));
  ASSERT_EQ(cta.select.items.size(), 5u);
  EXPECT_EQ(cta.select.items[0].name, "fid");
  EXPECT_TRUE(cta.select.items[0].is_bare_column);
  EXPECT_FALSE(cta.select.items[3].is_bare_column);
  ASSERT_TRUE(cta.select.items[4].cast_type.has_value());
  EXPECT_EQ(*cta.select.items[4].cast_type, ValueType::kTimestamp);
}

TEST(ParserTest, GroupByAndAggregates) {
  auto stmt = ParseSql(
      "CREATE TABLE order_total PRIMARY KEY (w, d, o) AS "
      "SELECT ol_w_id AS w, ol_d_id AS d, ol_o_id AS o, "
      "SUM(ol_amount) AS total, COUNT(*) AS n "
      "FROM order_line GROUP BY ol_w_id, ol_d_id, ol_o_id");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStatement& s = stmt->create_table_as->select;
  EXPECT_EQ(s.group_by.size(), 3u);
  EXPECT_EQ(s.items[3].agg, AggFunc::kSum);
  EXPECT_EQ(s.items[4].agg, AggFunc::kCount);
  EXPECT_EQ(s.items[4].expr, nullptr);  // COUNT(*).
}

TEST(ParserTest, Script) {
  auto script = ParseSqlScript(
      "CREATE TABLE a (x INT); INSERT INTO a VALUES (1); SELECT * FROM a;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserTest, TransactionKeywords) {
  EXPECT_EQ(ParseSql("BEGIN")->kind, Statement::Kind::kBegin);
  EXPECT_EQ(ParseSql("COMMIT")->kind, Statement::Kind::kCommit);
  EXPECT_EQ(ParseSql("ROLLBACK")->kind, Statement::Kind::kRollback);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(ParseSql("UPDATE t a = 1").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (a BADTYPE)").ok());
  EXPECT_FALSE(ParseSql("SELECT a, b FROM t1, t2").ok());  // Join in query.
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseSql("").ok());
}

TEST(ParserTest, DropTable) {
  auto stmt = ParseSql("DROP TABLE old_things");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kDropTable);
  EXPECT_EQ(stmt->drop_table->table, "old_things");
}

}  // namespace
}  // namespace bullfrog::sql
