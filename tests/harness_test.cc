#include <atomic>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "harness/driver.h"
#include "harness/metrics.h"

namespace bullfrog {
namespace {

TEST(LatencyHistogramTest, QuantilesOrderedAndBracketing) {
  LatencyHistogram h;
  // 1000 samples at ~1ms, 10 at ~100ms.
  for (int i = 0; i < 1000; ++i) h.RecordNanos(1'000'000);
  for (int i = 0; i < 10; ++i) h.RecordNanos(100'000'000);
  EXPECT_EQ(h.count(), 1010u);
  const double p50 = h.QuantileSeconds(0.5);
  const double p999 = h.QuantileSeconds(0.999);
  EXPECT_GT(p50, 0.0005);
  EXPECT_LT(p50, 0.002);
  EXPECT_GT(p999, 0.05);
  EXPECT_LE(p50, p999);
}

TEST(LatencyHistogramTest, CdfIsMonotonicAndEndsAtOne) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) {
    h.RecordNanos(static_cast<int64_t>(i) * 500'000);
  }
  auto cdf = h.Cdf();
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].fraction, cdf[i].fraction);
    EXPECT_LT(cdf[i - 1].latency_s, cdf[i].latency_s);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.RecordNanos(1'000'000);
  b.RecordNanos(1'000'000);
  b.RecordNanos(2'000'000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(LatencyHistogramTest, ExtremeValuesClamped) {
  LatencyHistogram h;
  h.RecordNanos(1);                    // Below 1us.
  h.RecordNanos(int64_t{1} << 62);     // Absurdly large.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.QuantileSeconds(0.99), 0.0);
}

TEST(ThroughputTimelineTest, BucketsBySecond) {
  ThroughputTimeline t(100);
  t.Record(0.1);
  t.Record(0.9);
  t.Record(2.5);
  auto series = t.Series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0], 2u);
  EXPECT_EQ(series[1], 0u);
  EXPECT_EQ(series[2], 1u);
}

TEST(ThroughputTimelineTest, OutOfRangeClamped) {
  ThroughputTimeline t(10);
  t.Record(-1.0);
  t.Record(1e9);
  auto series = t.Series();
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.front(), 1u);
  EXPECT_EQ(series.back(), 1u);
  uint64_t total = 0;
  for (uint64_t v : series) total += v;
  EXPECT_EQ(total, 2u);
}

TEST(ThroughputTimelineTest, SubSecondBuckets) {
  ThroughputTimeline t(10, 0.25);
  t.Record(0.1);
  t.Record(0.3);
  t.Record(0.35);
  auto series = t.Series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], 1u);
  EXPECT_EQ(series[1], 2u);
  EXPECT_DOUBLE_EQ(t.bucket_seconds(), 0.25);
}

TEST(OpenLoopDriverTest, ClosedLoopExecutesWork) {
  std::atomic<uint64_t> executed{0};
  OpenLoopDriver::Options opts;
  opts.threads = 4;
  opts.rate_tps = 0;  // Closed loop.
  opts.labels = {"work"};
  OpenLoopDriver driver(opts, [&](int) {
    executed.fetch_add(1);
    return std::make_pair(0, Status::OK());
  });
  driver.Start();
  Clock::SleepMillis(200);
  auto report = driver.Stop();
  EXPECT_GT(report.committed, 100u);
  EXPECT_EQ(report.committed, executed.load());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.throughput_tps, 0.0);
  ASSERT_EQ(report.latency.size(), 1u);
  EXPECT_EQ(report.latency[0]->count(), report.committed);
}

TEST(OpenLoopDriverTest, OpenLoopApproximatesOfferedRate) {
  OpenLoopDriver::Options opts;
  opts.threads = 4;
  opts.rate_tps = 500;
  OpenLoopDriver driver(opts, [&](int) {
    return std::make_pair(0, Status::OK());
  });
  driver.Start();
  Clock::SleepMillis(1000);
  auto report = driver.Stop();
  // Within a generous band of the offered 500 TPS.
  EXPECT_GT(report.committed, 300u);
  EXPECT_LT(report.committed, 700u);
}

TEST(OpenLoopDriverTest, RetriesRetryableFailures) {
  std::atomic<int> calls{0};
  OpenLoopDriver::Options opts;
  opts.threads = 1;
  opts.rate_tps = 0;
  OpenLoopDriver driver(opts, [&](int) {
    // Every third call succeeds.
    if (calls.fetch_add(1) % 3 != 2) {
      return std::make_pair(0, Status::TxnConflict("retry me"));
    }
    return std::make_pair(0, Status::OK());
  });
  driver.Start();
  Clock::SleepMillis(100);
  auto report = driver.Stop();
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(report.committed, 0u);
  // Stop() may cut one in-flight retry short per worker.
  EXPECT_LE(report.failures, 1u);
}

TEST(OpenLoopDriverTest, NonRetryableCountsAsFailure) {
  OpenLoopDriver::Options opts;
  opts.threads = 1;
  opts.rate_tps = 0;
  OpenLoopDriver driver(opts, [&](int) {
    return std::make_pair(0, Status::Internal("fatal"));
  });
  driver.Start();
  Clock::SleepMillis(50);
  auto report = driver.Stop();
  EXPECT_EQ(report.committed, 0u);
  EXPECT_GT(report.failures, 0u);
}

TEST(OpenLoopDriverTest, QueueBuildsWhenWorkersSaturated) {
  OpenLoopDriver::Options opts;
  opts.threads = 1;
  opts.rate_tps = 500;  // Each request takes ~5ms -> max ~200/s.
  OpenLoopDriver driver(opts, [&](int) {
    Clock::SleepMillis(5);
    return std::make_pair(0, Status::OK());
  });
  driver.Start();
  Clock::SleepMillis(500);
  const size_t depth = driver.QueueDepth();
  auto report = driver.Stop();
  EXPECT_GT(depth, 10u);  // Backlog accumulated.
  EXPECT_GT(report.peak_queue, 10u);
  // Queueing delay shows up in latency (paper's saturation behaviour).
  EXPECT_GT(report.latency[0]->QuantileSeconds(0.9), 0.05);
}

TEST(OpenLoopDriverTest, PerLabelLatencySeparated) {
  std::atomic<int> n{0};
  OpenLoopDriver::Options opts;
  opts.threads = 2;
  opts.rate_tps = 0;
  opts.labels = {"fast", "slow"};
  OpenLoopDriver driver(opts, [&](int) {
    const int i = n.fetch_add(1);
    if (i % 2 == 0) return std::make_pair(0, Status::OK());
    Clock::SleepMillis(2);
    return std::make_pair(1, Status::OK());
  });
  driver.Start();
  Clock::SleepMillis(200);
  auto report = driver.Stop();
  ASSERT_EQ(report.latency.size(), 2u);
  EXPECT_GT(report.latency[0]->count(), 0u);
  EXPECT_GT(report.latency[1]->count(), 0u);
  EXPECT_LT(report.latency[0]->QuantileSeconds(0.5),
            report.latency[1]->QuantileSeconds(0.5));
}

}  // namespace
}  // namespace bullfrog
