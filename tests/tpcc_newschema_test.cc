// Exercises every TPC-C transaction type against each post-migration
// schema version, after the migration has fully completed (so failures
// here are new-schema transaction-logic bugs, not migration races).

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "query/scan.h"
#include "tpcc/cols.h"
#include "tpcc/loader.h"
#include "tpcc/migrations.h"
#include "tpcc/schema.h"
#include "tpcc/transactions.h"
#include "tpcc/workload.h"

namespace bullfrog::tpcc {
namespace {

class NewSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scale_ = Scale::Small();
    scale_.warehouses = 2;
    ASSERT_TRUE(CreateTpccTables(&db_).ok());
    ASSERT_TRUE(LoadTpcc(&db_, scale_).ok());
    txns_ = std::make_unique<Transactions>(&db_, scale_);
  }

  void MigrateEager(MigrationPlan plan, SchemaVersion version) {
    MigrationController::SubmitOptions opts;
    opts.strategy = MigrationStrategy::kEager;
    ASSERT_TRUE(db_.SubmitMigration(std::move(plan), opts).ok());
    ASSERT_TRUE(db_.controller().IsComplete());
    txns_->set_version(version);
  }

  void RunAllTypes(int iterations, uint64_t seed) {
    WorkloadGenerator gen(scale_, seed);
    int per_type[5] = {0, 0, 0, 0, 0};
    for (int i = 0; i < iterations; ++i) {
      const TxnType type = gen.NextType();
      Status s = gen.Execute(txns_.get(), type);
      ASSERT_TRUE(s.ok() || s.IsRetryable() || s.IsConstraintViolation())
          << TxnTypeName(type) << ": " << s.ToString();
      if (s.ok()) per_type[static_cast<int>(type)]++;
    }
    // Every type must have succeeded at least once over 300 draws.
    for (int t = 0; t < 5; ++t) {
      EXPECT_GT(per_type[t], 0)
          << TxnTypeName(static_cast<TxnType>(t)) << " never committed";
    }
  }

  Scale scale_;
  Database db_;
  std::unique_ptr<Transactions> txns_;
};

TEST_F(NewSchemaTest, CustomerSplitAllTransactionTypes) {
  MigrateEager(CustomerSplitPlan(), SchemaVersion::kCustomerSplit);
  RunAllTypes(300, 5);
}

TEST_F(NewSchemaTest, CustomerSplitPaymentByNameUsesPublicTable) {
  MigrateEager(CustomerSplitPlan(), SchemaVersion::kCustomerSplit);
  // Fetch a real last name from the public half.
  Table* pub = db_.catalog().FindTable(kCustomerPublic);
  Tuple row;
  ASSERT_TRUE(pub->Read(0, &row).ok());
  Transactions::PaymentParams p;
  p.w_id = row[col::cpub::kWId].AsInt();
  p.d_id = row[col::cpub::kDId].AsInt();
  p.c_w_id = p.w_id;
  p.c_d_id = p.d_id;
  p.by_last_name = true;
  p.c_last = row[col::cpub::kLast].AsString();
  p.amount = 12.5;
  EXPECT_TRUE(txns_->Payment(p).ok());
}

TEST_F(NewSchemaTest, CustomerSplitDeliveryUpdatesPrivateBalance) {
  MigrateEager(CustomerSplitPlan(), SchemaVersion::kCustomerSplit);
  const double before = [&] {
    double sum = 0;
    db_.catalog().FindTable(kCustomerPrivate)->Scan(
        [&](RowId, const Tuple& r) {
          sum += r[col::cpriv::kBalance].AsDouble();
          return true;
        });
    return sum;
  }();
  Transactions::DeliveryParams p;
  p.w_id = 1;
  p.carrier_id = 2;
  ASSERT_TRUE(txns_->Delivery(p).ok());
  const double after = [&] {
    double sum = 0;
    db_.catalog().FindTable(kCustomerPrivate)->Scan(
        [&](RowId, const Tuple& r) {
          sum += r[col::cpriv::kBalance].AsDouble();
          return true;
        });
    return sum;
  }();
  EXPECT_GT(after, before);  // Delivered order totals credited.
}

TEST_F(NewSchemaTest, OrderTotalAllTransactionTypes) {
  MigrateEager(OrderTotalPlan(), SchemaVersion::kOrderTotal);
  RunAllTypes(300, 17);
}

TEST_F(NewSchemaTest, OrderTotalMaintainedByNewOrder) {
  MigrateEager(OrderTotalPlan(), SchemaVersion::kOrderTotal);
  Transactions::NewOrderParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 1;
  p.lines = {{1, 1, 2}, {2, 1, 3}};
  ASSERT_TRUE(txns_->NewOrder(p).ok());
  // The freshly inserted order has an aggregate row equal to the sum of
  // its lines.
  Table* ot = db_.catalog().FindTable(kOrderTotal);
  Table* ol = db_.catalog().FindTable(kOrderLine);
  Table* district = db_.catalog().FindTable(kDistrict);
  auto drows = CollectWhere(*district, And(Eq(Col("d_w_id"), LitInt(1)),
                                           Eq(Col("d_id"), LitInt(1))));
  ASSERT_TRUE(drows.ok());
  const int64_t o_id =
      drows->front().second[col::dist::kNextOId].AsInt() - 1;
  auto total_rows = CollectWhere(
      *ot, And(And(Eq(Col("ot_w_id"), LitInt(1)),
                   Eq(Col("ot_d_id"), LitInt(1))),
               Eq(Col("ot_o_id"), LitInt(o_id))));
  ASSERT_TRUE(total_rows.ok());
  ASSERT_EQ(total_rows->size(), 1u);
  double expected = 0;
  auto line_rows = CollectWhere(
      *ol, And(And(Eq(Col("ol_w_id"), LitInt(1)),
                   Eq(Col("ol_d_id"), LitInt(1))),
               Eq(Col("ol_o_id"), LitInt(o_id))));
  ASSERT_TRUE(line_rows.ok());
  ASSERT_EQ(line_rows->size(), 2u);
  for (auto& [rid, r] : *line_rows) expected += r[col::ol::kAmount].AsDouble();
  EXPECT_NEAR(total_rows->front().second[col::ot::kTotal].AsDouble(),
              expected, 1e-9);
}

TEST_F(NewSchemaTest, OrderTotalDeliveryReadsAggregate) {
  MigrateEager(OrderTotalPlan(), SchemaVersion::kOrderTotal);
  Transactions::DeliveryParams p;
  p.w_id = 1;
  p.carrier_id = 4;
  EXPECT_TRUE(txns_->Delivery(p).ok());
}

TEST_F(NewSchemaTest, OrderlineStockAllTransactionTypes) {
  MigrateEager(OrderlineStockPlan(), SchemaVersion::kOrderlineStock);
  RunAllTypes(300, 29);
}

TEST_F(NewSchemaTest, OrderlineStockQuantitySnapshotOnInsert) {
  MigrateEager(OrderlineStockPlan(), SchemaVersion::kOrderlineStock);
  Table* ols = db_.catalog().FindTable(kOrderlineStock);
  const uint64_t before = ols->NumLiveRows();

  Transactions::NewOrderParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 1;
  p.lines = {{5, 1, 3}, {6, 2, 4}};
  ASSERT_TRUE(txns_->NewOrder(p).ok());

  // Insert-only denormalization: exactly one joined row per line, keyed
  // by the supply warehouse, with a plausible snapshot quantity.
  EXPECT_EQ(ols->NumLiveRows(), before + 2);
  auto rows = CollectWhere(
      *ols, And(Eq(Col("ol_w_id"), LitInt(1)),
                And(Eq(Col("ol_d_id"), LitInt(1)),
                    Eq(Col("ol_i_id"), LitInt(5)))));
  ASSERT_TRUE(rows.ok());
  bool found_new = false;
  for (auto& [rid, r] : *rows) {
    if (r[col::ols::kQuantity].AsInt() == 3) {
      found_new = true;
      EXPECT_EQ(r[col::ols::kSWId].AsInt(), 1);  // Supply warehouse copy.
      EXPECT_GE(r[col::ols::kSQuantity].AsInt(), 1);
      EXPECT_LE(r[col::ols::kSQuantity].AsInt(), 100);
    }
  }
  EXPECT_TRUE(found_new);
}

TEST_F(NewSchemaTest, OrderlineStockStockLevelUsesJoinedTable) {
  MigrateEager(OrderlineStockPlan(), SchemaVersion::kOrderlineStock);
  Transactions::StockLevelParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.threshold = 100;  // High threshold: plenty of matches.
  EXPECT_TRUE(txns_->StockLevel(p).ok());
}

}  // namespace
}  // namespace bullfrog::tpcc
