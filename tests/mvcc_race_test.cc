// MVCC race tests, written for TSan: snapshot readers racing committing
// writers (statement-level sum invariant), racing the background version
// GC at a 1ms sweep interval, racing a live lazy migration's pulls, and
// racing a multistep copier's dual writes. Readers never take row locks,
// so every reader-side Status must be OK — a reader wait-die abort is a
// test failure, which is exactly the property the Zipf bench measures.

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "sql/engine.h"

namespace bullfrog {
namespace {

constexpr int kAccounts = 16;
constexpr int64_t kInitialBalance = 100;
constexpr int64_t kTotal = kAccounts * kInitialBalance;

void SeedAccounts(Database* db) {
  ASSERT_TRUE(db->CreateTable(SchemaBuilder("accounts")
                                  .AddColumn("id", ValueType::kInt64, false)
                                  .AddColumn("balance", ValueType::kInt64)
                                  .SetPrimaryKey({"id"})
                                  .Build())
                  .ok());
  auto s = db->BeginSession({"accounts"});
  for (int i = 0; i < kAccounts; ++i) {
    ASSERT_TRUE(db->Insert(&s, "accounts",
                           Tuple{Value::Int(i), Value::Int(kInitialBalance)})
                    .ok());
  }
  ASSERT_TRUE(db->Commit(&s).ok());
}

/// One transfer transaction: move `delta` from account `from` to
/// account `to` under 2PL. Wait-die may kill it; returns whether it
/// committed so callers can retry like a real client.
bool TryTransfer(Database* db, int from, int to, int64_t delta) {
  auto s = db->BeginSession({"accounts"});
  auto debit = db->Update(&s, "accounts", Eq(Col("id"), LitInt(from)),
                          [&](const Tuple& t) {
                            Tuple u = t;
                            u[1] = Value::Int(t[1].AsInt() - delta);
                            return u;
                          });
  if (!debit.ok()) {
    db->Abort(&s);
    return false;
  }
  auto credit = db->Update(&s, "accounts", Eq(Col("id"), LitInt(to)),
                           [&](const Tuple& t) {
                             Tuple u = t;
                             u[1] = Value::Int(t[1].AsInt() + delta);
                             return u;
                           });
  if (!credit.ok()) {
    db->Abort(&s);
    return false;
  }
  return db->Commit(&s).ok();
}

/// Snapshot readers sum every balance `rounds` times; each statement
/// must observe a transactionally consistent total.
void RunReaders(Database* db, int nthreads, int rounds,
                std::atomic<bool>* failed) {
  std::vector<std::thread> readers;
  for (int r = 0; r < nthreads; ++r) {
    readers.emplace_back([db, rounds, failed, r] {
      for (int i = 0; i < rounds; ++i) {
        auto s = db->BeginSession({"accounts"});
        auto rows = db->Select(&s, "accounts", nullptr);
        if (!rows.ok()) {
          ADD_FAILURE() << "reader " << r << " select: " << rows.status();
          failed->store(true);
          db->Abort(&s);
          return;
        }
        int64_t sum = 0;
        for (const auto& [rid, row] : *rows) sum += row[1].AsInt();
        if (sum != kTotal || rows->size() != kAccounts) {
          ADD_FAILURE() << "reader " << r << " saw inconsistent snapshot: "
                        << rows->size() << " rows, sum " << sum;
          failed->store(true);
          db->Abort(&s);
          return;
        }
        if (!db->Commit(&s).ok()) {
          failed->store(true);
          return;
        }
      }
    });
  }
  for (auto& t : readers) t.join();
}

void RunWriters(Database* db, int nthreads, int transfers) {
  std::vector<std::thread> writers;
  for (int w = 0; w < nthreads; ++w) {
    writers.emplace_back([db, transfers, w] {
      uint64_t rng = 0x9e3779b97f4a7c15ULL * (w + 1);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < transfers; ++i) {
        const int from = static_cast<int>(next() % kAccounts);
        int to = static_cast<int>(next() % kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t delta = static_cast<int64_t>(next() % 10) + 1;
        // Wait-die kills are expected under contention; retry a few
        // times, then move on — the invariant holds either way.
        for (int attempt = 0; attempt < 20; ++attempt) {
          if (TryTransfer(db, from, to, delta)) break;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
}

TEST(MvccRaceTest, SnapshotReadersVsTransferWriters) {
  Database db;
  db.SetSnapshotReads(true);
  SeedAccounts(&db);
  std::atomic<bool> failed{false};
  std::thread writer_group([&] { RunWriters(&db, 4, 150); });
  RunReaders(&db, 3, 200, &failed);
  writer_group.join();
  EXPECT_FALSE(failed.load());

  // Quiescent total is exact.
  auto s = db.BeginSession({"accounts"});
  auto rows = db.Select(&s, "accounts", nullptr);
  ASSERT_TRUE(rows.ok());
  int64_t sum = 0;
  for (const auto& [rid, row] : *rows) sum += row[1].AsInt();
  EXPECT_EQ(sum, kTotal);
  ASSERT_TRUE(db.Commit(&s).ok());
}

TEST(MvccRaceTest, SnapshotReadersVsVersionGc) {
  // A 1ms sweeper races the readers' pinned views and the writers'
  // chain growth; the watermark handshake must keep every pinned
  // version alive.
  ::setenv("BF_MVCC_GC_MS", "1", 1);
  Database db;
  ::unsetenv("BF_MVCC_GC_MS");
  db.SetSnapshotReads(true);
  SeedAccounts(&db);
  std::atomic<bool> failed{false};
  std::thread writer_group([&] { RunWriters(&db, 3, 150); });
  RunReaders(&db, 3, 200, &failed);
  writer_group.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GE(db.version_gc().passes(), 1u);
}

TEST(MvccRaceTest, SnapshotReadersVsLiveLazyMigration) {
  Database db;
  db.SetSnapshotReads(true);
  sql::SqlEngine engine(&db);
  {
    auto r = engine.Execute(
        "CREATE TABLE kv (id INT PRIMARY KEY, score DOUBLE, name TEXT)");
    ASSERT_TRUE(r.ok()) << r.status();
  }
  for (int i = 0; i < 200; ++i) {
    auto r = engine.Execute("INSERT INTO kv VALUES (" + std::to_string(i) +
                            ", " + std::to_string(i) + ".5, 'row" +
                            std::to_string(i) + "')");
    ASSERT_TRUE(r.ok()) << r.status();
  }

  MigrationController::SubmitOptions opts;
  opts.enable_background = true;
  ASSERT_TRUE(engine
                  .SubmitMigrationScript(
                      "CREATE TABLE kv2 PRIMARY KEY (id) AS "
                      "SELECT id, name FROM kv; DROP TABLE kv;",
                      opts)
                  .ok());

  // Readers scan the new schema while background workers and their own
  // lazy pulls migrate granules underneath them. Every scan triggers
  // PrepareRead first, so each must see all 200 rows.
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&db, &failed, r] {
      for (int i = 0; i < 40 && !failed.load(); ++i) {
        auto s = db.BeginSession({"kv2"});
        auto rows = db.Select(&s, "kv2", nullptr);
        if (!rows.ok()) {
          ADD_FAILURE() << "reader " << r << ": " << rows.status();
          failed.store(true);
          db.Abort(&s);
          return;
        }
        if (rows->size() != 200u) {
          ADD_FAILURE() << "reader " << r << " saw " << rows->size()
                        << " rows mid-migration";
          failed.store(true);
        }
        db.Commit(&s);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  for (int i = 0; i < 2000 && !db.controller().IsComplete(); ++i) {
    Clock::SleepMillis(1);
  }
  EXPECT_TRUE(db.controller().IsComplete());
}

TEST(MvccRaceTest, SnapshotReadersVsMultiStepCopier) {
  Database db;
  db.SetSnapshotReads(true);
  sql::SqlEngine engine(&db);
  {
    auto r = engine.Execute(
        "CREATE TABLE src (id INT PRIMARY KEY, grp INT, val INT)");
    ASSERT_TRUE(r.ok()) << r.status();
  }
  int64_t total = 0;
  for (int i = 0; i < 300; ++i) {
    auto r = engine.Execute("INSERT INTO src VALUES (" + std::to_string(i) +
                            ", " + std::to_string(i % 10) + ", " +
                            std::to_string(i) + ")");
    ASSERT_TRUE(r.ok()) << r.status();
    total += i;
  }

  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kMultiStep;
  opts.multistep.batch = 16;
  opts.multistep.pause_us = 500;  // Pace the copier so reads land mid-copy.
  ASSERT_TRUE(engine
                  .SubmitMigrationScript(
                      "CREATE TABLE dst PRIMARY KEY (id) AS "
                      "SELECT id, val FROM src; DROP TABLE src;",
                      opts)
                  .ok());

  // The old schema stays active during the copy: snapshot readers keep
  // summing it and must see a stable total until the cutover drops it.
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &failed, total, r] {
      while (!db.controller().IsComplete() && !failed.load()) {
        auto s = db.BeginSession({"src"});
        auto rows = db.Select(&s, "src", nullptr);
        if (!rows.ok()) {
          // The cutover retires src mid-loop; that rejection is the
          // expected end of this reader's run, not a failure.
          db.Abort(&s);
          return;
        }
        int64_t sum = 0;
        for (const auto& [rid, row] : *rows) sum += row[2].AsInt();
        if (sum != total) {
          ADD_FAILURE() << "reader " << r << " saw torn sum " << sum;
          failed.store(true);
        }
        db.Commit(&s);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  for (int i = 0; i < 5000 && !db.controller().IsComplete(); ++i) {
    Clock::SleepMillis(1);
  }
  ASSERT_TRUE(db.controller().IsComplete());
  auto s = db.BeginSession({"dst"});
  auto rows = db.Select(&s, "dst", nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 300u);
  ASSERT_TRUE(db.Commit(&s).ok());
}

}  // namespace
}  // namespace bullfrog
