// Unit tests for the wire protocol codec: result-set round trips over the
// redo log's Value type tags, frame semantics, host:port parsing, and the
// optional trace-id frame extension's backward compatibility in both
// directions (old client -> new server, new client -> old-style frames).

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "bullfrog/database.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/value_codec.h"

namespace bullfrog::server {
namespace {

TEST(ResultSetCodec, RoundTripAllValueTypes) {
  ResultSet in;
  in.columns = {"id", "score", "name", "when", "gone"};
  in.rows.push_back(Tuple{Value::Int(-7), Value::Double(2.25),
                          Value::Str("héllo"), Value::Timestamp(123456),
                          Value::Null()});
  in.rows.push_back(Tuple{Value::Int(8), Value::Double(-0.5),
                          Value::Str(""), Value::Timestamp(-1),
                          Value::Null()});
  in.affected = 42;

  ResultSet out;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(in), &out));
  ASSERT_EQ(out.columns, in.columns);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0][0].AsInt(), -7);
  EXPECT_DOUBLE_EQ(out.rows[0][1].AsDouble(), 2.25);
  EXPECT_EQ(out.rows[0][2].AsString(), "héllo");
  EXPECT_EQ(out.rows[0][3].AsTimestamp(), 123456);
  EXPECT_TRUE(out.rows[0][4].is_null());
  EXPECT_EQ(out.rows[1][2].AsString(), "");
  EXPECT_EQ(out.affected, 42u);
}

TEST(ResultSetCodec, EmptyResult) {
  ResultSet out;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(ResultSet()), &out));
  EXPECT_TRUE(out.columns.empty());
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(out.affected, 0u);
}

TEST(ResultSetCodec, RejectsTruncatedAndTrailingGarbage) {
  ResultSet in;
  in.columns = {"a"};
  in.rows.push_back(Tuple{Value::Int(1)});
  const std::string encoded = EncodeResultSet(in);
  ResultSet out;
  // Every strict prefix fails cleanly instead of crashing or succeeding.
  for (size_t n = 0; n < encoded.size(); ++n) {
    EXPECT_FALSE(DecodeResultSet(encoded.substr(0, n), &out))
        << "prefix of " << n << " bytes decoded unexpectedly";
  }
  EXPECT_FALSE(DecodeResultSet(encoded + "x", &out));
  EXPECT_TRUE(DecodeResultSet(encoded, &out));
}

TEST(ResultSetCodec, RejectsUnknownValueTag) {
  std::string payload;
  codec::PutU32(&payload, 1);  // 1 column
  codec::PutLenPrefixed(&payload, "c");
  codec::PutU32(&payload, 1);  // 1 row
  codec::PutU32(&payload, 1);  // 1 value
  payload.push_back(9);        // bogus type tag
  codec::PutU64(&payload, 0);
  codec::PutU64(&payload, 0);  // affected
  ResultSet out;
  EXPECT_FALSE(DecodeResultSet(payload, &out));
}

TEST(ParseHostPortTest, Valid) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:7788", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7788);
  ASSERT_TRUE(ParseHostPort(":9", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");  // Empty host defaults to loopback.
  EXPECT_EQ(port, 9);
}

TEST(ParseHostPortTest, Invalid) {
  std::string host;
  uint16_t port = 0;
  EXPECT_FALSE(ParseHostPort("nocolon", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:notaport", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:70000", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:0", &host, &port).ok());
}

TEST(TracedFrameFlag, OpcodeArithmetic) {
  // The flag must not collide with any real opcode and must strip
  // cleanly. These values are wire compatibility — never renumber.
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kQuery), 1);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kMigrate), 2);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kAdmin), 3);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kPing), 4);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kReplicate), 5);
  EXPECT_EQ(kTracedFlag, 0x80);
  EXPECT_EQ(kTraceIdBytes, 8u);
  for (uint8_t op = 1; op <= 5; ++op) {
    EXPECT_FALSE(IsTracedFrame(op));
    EXPECT_EQ(BaseOpcode(op), op);
    EXPECT_TRUE(IsTracedFrame(op | kTracedFlag));
    EXPECT_EQ(BaseOpcode(op | kTracedFlag), op);
  }
}

class TracedFrameCompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ServerConfig config;
    config.workers = 2;
    server_ = std::make_unique<Server>(db_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(TracedFrameCompatTest, OldClientsAreServedUnchanged) {
  // A client that never sets the flag (trace_id defaults to 0) sends
  // byte-identical frames to the pre-tracing protocol; everything works
  // and nothing is recorded server-side.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Ping().ok());
  ASSERT_TRUE(
      c.Query("CREATE TABLE frogs (id INT PRIMARY KEY, leaps INT)").ok());
  ASSERT_TRUE(c.Query("INSERT INTO frogs VALUES (1, 4)").ok());
  auto rows = c.Query("SELECT * FROM frogs WHERE id = 1");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows.size(), 1u);
  // Sampling is off by default and no frame was flagged: no traces.
  auto profile = c.Admin("profile");
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_EQ(*profile, "no traces recorded\n");
}

TEST_F(TracedFrameCompatTest, FlaggedQueryTracesUnderClientChosenId) {
  Client setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(
      setup.Query("CREATE TABLE toads (id INT PRIMARY KEY, v INT)").ok());
  ASSERT_TRUE(setup.Query("INSERT INTO toads VALUES (7, 70)").ok());

  const uint64_t id = 0xfeedfacecafe1234ull;
  auto rows = setup.Query("SELECT * FROM toads WHERE id = 7", id);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows.size(), 1u);

  auto profile = setup.Admin("profile 0xfeedfacecafe1234");
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_NE(profile->find("trace id=0xfeedfacecafe1234"), std::string::npos)
      << *profile;
  EXPECT_NE(profile->find("] execute"), std::string::npos) << *profile;
  EXPECT_NE(profile->find("SELECT * FROM toads WHERE id = 7"),
            std::string::npos)
      << *profile;
  // The traced request also lands in the slowlog with its id.
  auto slowlog = setup.Admin("slowlog");
  ASSERT_TRUE(slowlog.ok());
  EXPECT_NE(slowlog->find("0xfeedfacecafe1234"), std::string::npos)
      << *slowlog;
}

TEST_F(TracedFrameCompatTest, ResponsesNeverCarryTheFlag) {
  // Drive raw frames so we can see the response status byte: both an
  // unflagged and a flagged request must come back with a plain status
  // byte (high bit clear) — old clients never see the flag.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Query("CREATE TABLE newts (id INT PRIMARY KEY)").ok());
  // A traced round trip through the public API succeeds — if the server
  // flagged the response status byte, Client would reject it as an
  // unknown status and this would fail.
  auto traced = c.Query("SELECT * FROM newts", 0x1234u);
  ASSERT_TRUE(traced.ok()) << traced.status();
  auto plain = c.Query("SELECT * FROM newts");
  ASSERT_TRUE(plain.ok()) << plain.status();
}

TEST_F(TracedFrameCompatTest, FlaggedNonQueryOpcodesAreRejected) {
  // The flag is only honored on kQuery: a flagged PING is an unknown
  // opcode (kInvalidArgument), and the connection survives to serve the
  // next request.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  Result<std::string> r = c.RoundTripRaw(
      static_cast<uint8_t>(Opcode::kPing) | kTracedFlag, "");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().IsUnavailable()) << r.status();
  EXPECT_TRUE(c.Ping().ok());  // Connection still healthy.
}

TEST_F(TracedFrameCompatTest, ShortFlaggedQueryPayloadIsNotMisparsed) {
  // A flagged kQuery whose payload is shorter than a trace id cannot be
  // split into id + SQL; the server must answer with an error, not crash
  // or hang, and keep the connection.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  Result<std::string> r = c.RoundTripRaw(
      static_cast<uint8_t>(Opcode::kQuery) | kTracedFlag, "abc");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().IsUnavailable()) << r.status();
  EXPECT_TRUE(c.Ping().ok());
}

}  // namespace
}  // namespace bullfrog::server
