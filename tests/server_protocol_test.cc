// Unit tests for the wire protocol codec: result-set round trips over the
// redo log's Value type tags, frame semantics, and host:port parsing.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include "storage/value_codec.h"

namespace bullfrog::server {
namespace {

TEST(ResultSetCodec, RoundTripAllValueTypes) {
  ResultSet in;
  in.columns = {"id", "score", "name", "when", "gone"};
  in.rows.push_back(Tuple{Value::Int(-7), Value::Double(2.25),
                          Value::Str("héllo"), Value::Timestamp(123456),
                          Value::Null()});
  in.rows.push_back(Tuple{Value::Int(8), Value::Double(-0.5),
                          Value::Str(""), Value::Timestamp(-1),
                          Value::Null()});
  in.affected = 42;

  ResultSet out;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(in), &out));
  ASSERT_EQ(out.columns, in.columns);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0][0].AsInt(), -7);
  EXPECT_DOUBLE_EQ(out.rows[0][1].AsDouble(), 2.25);
  EXPECT_EQ(out.rows[0][2].AsString(), "héllo");
  EXPECT_EQ(out.rows[0][3].AsTimestamp(), 123456);
  EXPECT_TRUE(out.rows[0][4].is_null());
  EXPECT_EQ(out.rows[1][2].AsString(), "");
  EXPECT_EQ(out.affected, 42u);
}

TEST(ResultSetCodec, EmptyResult) {
  ResultSet out;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(ResultSet()), &out));
  EXPECT_TRUE(out.columns.empty());
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(out.affected, 0u);
}

TEST(ResultSetCodec, RejectsTruncatedAndTrailingGarbage) {
  ResultSet in;
  in.columns = {"a"};
  in.rows.push_back(Tuple{Value::Int(1)});
  const std::string encoded = EncodeResultSet(in);
  ResultSet out;
  // Every strict prefix fails cleanly instead of crashing or succeeding.
  for (size_t n = 0; n < encoded.size(); ++n) {
    EXPECT_FALSE(DecodeResultSet(encoded.substr(0, n), &out))
        << "prefix of " << n << " bytes decoded unexpectedly";
  }
  EXPECT_FALSE(DecodeResultSet(encoded + "x", &out));
  EXPECT_TRUE(DecodeResultSet(encoded, &out));
}

TEST(ResultSetCodec, RejectsUnknownValueTag) {
  std::string payload;
  codec::PutU32(&payload, 1);  // 1 column
  codec::PutLenPrefixed(&payload, "c");
  codec::PutU32(&payload, 1);  // 1 row
  codec::PutU32(&payload, 1);  // 1 value
  payload.push_back(9);        // bogus type tag
  codec::PutU64(&payload, 0);
  codec::PutU64(&payload, 0);  // affected
  ResultSet out;
  EXPECT_FALSE(DecodeResultSet(payload, &out));
}

TEST(ParseHostPortTest, Valid) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:7788", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7788);
  ASSERT_TRUE(ParseHostPort(":9", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");  // Empty host defaults to loopback.
  EXPECT_EQ(port, 9);
}

TEST(ParseHostPortTest, Invalid) {
  std::string host;
  uint16_t port = 0;
  EXPECT_FALSE(ParseHostPort("nocolon", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:notaport", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:70000", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:0", &host, &port).ok());
}

}  // namespace
}  // namespace bullfrog::server
