// End-to-end request tracing over a sharded server: 8 wire clients drive
// a live lazy migration while traced frames flow through the router's
// fan-out, and ADMIN profile/slowlog/timeseries expose what happened.
//
// The acceptance contract exercised here:
//   - a traced statement's span tree "accounts" for its end-to-end time:
//     the depth-1 span durations sum to within 10% of total_ns;
//   - lazy migration pulls are attributed to the first-touching request
//     (migrate_pull span with units > 0) and are absent on warm re-reads;
//   - ADMIN slowlog / timeseries return non-empty, well-formed text
//     mid-migration.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/sharded_database.h"

namespace bullfrog::server {
namespace {

/// Pulls `field=<int>` off a rendered profile's first line; -1 if absent.
int64_t ProfileField(const std::string& profile, const std::string& field) {
  const std::string needle = field + "=";
  const size_t pos = profile.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(profile.c_str() + pos + needle.size(), nullptr, 10);
}

class TraceE2ETest : public ::testing::Test {
 protected:
  static constexpr int kShards = 4;
  static constexpr int kRows = 1600;

  void SetUp() override {
    sharded_ = std::make_unique<shard::ShardedDatabase>(kShards);
    sharded_->StartTimeseries(/*interval_ms=*/50);
    ServerConfig config;
    config.workers = 12;
    config.migrate_options.lazy.background_start_delay_ms = 1200;
    config.migrate_options.lazy.background_threads = 1;
    config.migrate_options.lazy.background_batch = 16;
    config.migrate_options.lazy.background_pause_us = 200;
    server_ = std::make_unique<Server>(sharded_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  Client Connect() {
    Client c;
    Status s = c.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(s.ok()) << s;
    return c;
  }

  std::unique_ptr<shard::ShardedDatabase> sharded_;
  std::unique_ptr<Server> server_;
};

TEST_F(TraceE2ETest, EightClientLiveMigrationWithAttribution) {
  Client admin = Connect();
  ASSERT_TRUE(
      admin.Query("CREATE TABLE accts (id INT PRIMARY KEY, bal INT)").ok());
  for (int base = 0; base < kRows;) {
    std::string sql = "INSERT INTO accts VALUES ";
    for (int i = 0; i < 100 && base < kRows; ++i, ++base) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(base) + ", " + std::to_string(base % 89) +
             ")";
    }
    auto r = admin.Query(sql);
    ASSERT_TRUE(r.ok()) << r.status();
  }

  ASSERT_TRUE(admin
                  .Migrate("CREATE TABLE accts_v2 PRIMARY KEY (id) AS "
                           "SELECT id, bal, bal * 2 AS dbl FROM accts;\n"
                           "DROP TABLE accts;")
                  .ok());

  // --- First touch, traced end to end under a client-chosen id. ---
  const uint64_t first_id = 0xace0001u;
  auto first = admin.Query("SELECT * FROM accts_v2 WHERE id < 400",
                           first_id);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->rows.size(), 400u);

  auto first_profile = admin.Admin("profile 0xace0001");
  ASSERT_TRUE(first_profile.ok()) << first_profile.status();
  // Span tree: the routed fan-out and per-shard execution are visible.
  EXPECT_NE(first_profile->find("] route"), std::string::npos)
      << *first_profile;
  EXPECT_NE(first_profile->find("] fanout"), std::string::npos)
      << *first_profile;
  EXPECT_NE(first_profile->find("shard="), std::string::npos)
      << *first_profile;
  // Lazy pulls attributed to this (first-touching) request.
  EXPECT_NE(first_profile->find("migrate_pull"), std::string::npos)
      << *first_profile;
  EXPECT_NE(first_profile->find("table=accts_v2 units="), std::string::npos)
      << *first_profile;
  // The depth-1 spans account for the request's wall time within 10%.
  const int64_t total = ProfileField(*first_profile, "total_ns");
  const int64_t accounted = ProfileField(*first_profile, "accounted_ns");
  ASSERT_GT(total, 0) << *first_profile;
  EXPECT_GE(accounted, total - total / 10) << *first_profile;
  EXPECT_LE(accounted, total + total / 10) << *first_profile;

  // --- Warm re-read: same predicate, zero pulls, no migrate_pull. ---
  const uint64_t warm_id = 0xace0002u;
  auto warm = admin.Query("SELECT * FROM accts_v2 WHERE id < 400", warm_id);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->rows.size(), 400u);
  auto warm_profile = admin.Admin("profile 0xace0002");
  ASSERT_TRUE(warm_profile.ok()) << warm_profile.status();
  EXPECT_NE(warm_profile->find("trace id=0x000000000ace0002"),
            std::string::npos)
      << *warm_profile;
  EXPECT_EQ(warm_profile->find("migrate_pull"), std::string::npos)
      << *warm_profile;

  // --- 8 concurrent clients, every 16th statement traced. ---
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int w = 0; w < 8; ++w) {
    clients.emplace_back([&, w] {
      Client c;
      if (!c.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int id = static_cast<int>((rng >> 33) % kRows);
        const uint64_t trace_id = (++n % 16 == 0) ? rng | 1 : 0;
        auto r = c.Query("SELECT id, bal, dbl FROM accts_v2 WHERE id = " +
                             std::to_string(id),
                         trace_id);
        if (!r.ok()) {
          if (!r.status().IsRetryable()) failures.fetch_add(1);
          continue;
        }
        if (r->rows.size() != 1 ||
            r->rows[0][2].AsInt() != r->rows[0][1].AsInt() * 2) {
          failures.fetch_add(1);
        }
      }
    });
  }

  // Mid-migration observability scrapes (while clients hammer away).
  Clock::SleepMillis(300);
  {
    auto slowlog = admin.Admin("slowlog");
    ASSERT_TRUE(slowlog.ok()) << slowlog.status();
    EXPECT_NE(*slowlog, "slowlog empty\n");
    EXPECT_NE(slowlog->find("total="), std::string::npos) << *slowlog;
    EXPECT_NE(slowlog->find("id=0x"), std::string::npos) << *slowlog;

    auto timeseries = admin.Admin("timeseries");
    ASSERT_TRUE(timeseries.ok()) << timeseries.status();
    EXPECT_NE(timeseries->find("# timeseries interval_ms=50"),
              std::string::npos)
        << *timeseries;
    EXPECT_NE(timeseries->find("t_ms"), std::string::npos) << *timeseries;
    EXPECT_NE(timeseries->find("migration_progress"), std::string::npos)
        << *timeseries;
    // At least one data row by now (300ms at a 50ms interval).
    const size_t header_end = timeseries->find("t_ms");
    const size_t first_row = timeseries->find('\n', header_end);
    ASSERT_NE(first_row, std::string::npos) << *timeseries;
    EXPECT_LT(first_row + 1, timeseries->size()) << *timeseries;
  }

  // Drive the migration home (lazy traffic + background sweep).
  Stopwatch waited;
  for (;;) {
    auto p = admin.MigrationProgress();
    ASSERT_TRUE(p.ok()) << p.status();
    if (*p >= 1.0) break;
    ASSERT_LT(waited.ElapsedSeconds(), 60.0)
        << "migration never completed; progress=" << *p;
    Clock::SleepMillis(25);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every row crossed; the newest profile is still renderable.
  auto count = admin.Query("SELECT COUNT(*) AS n FROM accts_v2");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), kRows);
  auto newest = admin.Admin("profile");
  ASSERT_TRUE(newest.ok());
  EXPECT_NE(newest->find("trace id=0x"), std::string::npos) << *newest;
}

}  // namespace
}  // namespace bullfrog::server
