// MVCC subsystem tests: snapshot-read visibility (uncommitted writes
// stay invisible to other sessions, own writes show through the txn id
// in the view), abort unlinking pending versions, version-chain GC
// against the min-pinned-snapshot watermark, WAL replay rebuilding the
// same visible state, and the acceptance-critical quiesce-free
// checkpoint: a consistent snapshot captured — and restored, and
// converged — while a lazy migration is still in flight.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "replication/applier.h"
#include "replication/checkpoint.h"
#include "sql/engine.h"

namespace bullfrog {
namespace {

void MustExec(sql::SqlEngine* engine, const std::string& stmt) {
  auto r = engine->Execute(stmt);
  ASSERT_TRUE(r.ok()) << stmt << ": " << r.status();
}

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.SetSnapshotReads(true);
    ASSERT_TRUE(db_.CreateTable(SchemaBuilder("users")
                                    .AddColumn("id", ValueType::kInt64, false)
                                    .AddColumn("name", ValueType::kString)
                                    .AddColumn("age", ValueType::kInt64)
                                    .SetPrimaryKey({"id"})
                                    .Build())
                    .ok());
    auto s = db_.BeginSession({"users"});
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_.Insert(&s, "users",
                             Tuple{Value::Int(i),
                                   Value::Str("u" + std::to_string(i)),
                                   Value::Int(20 + i)})
                      .ok());
    }
    ASSERT_TRUE(db_.Commit(&s).ok());
  }

  Database db_;
};

TEST_F(MvccTest, UncommittedWritesInvisibleToOtherSnapshots) {
  auto writer = db_.BeginSession({"users"});
  ASSERT_TRUE(db_.Insert(&writer, "users",
                         Tuple{Value::Int(100), Value::Str("pending"),
                               Value::Int(1)})
                  .ok());
  auto n = db_.Update(&writer, "users", Eq(Col("id"), LitInt(5)),
                      [](const Tuple& t) {
                        Tuple u = t;
                        u[2] = Value::Int(999);
                        return u;
                      });
  ASSERT_TRUE(n.ok());

  // A concurrent snapshot reader sees neither the pending insert nor the
  // pending update — and takes no row locks doing so (the writer still
  // holds exclusive locks on both rows).
  auto reader = db_.BeginSession({"users"});
  auto rows = db_.Select(&reader, "users", nullptr);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 20u);
  auto row5 = db_.Select(&reader, "users", Eq(Col("id"), LitInt(5)));
  ASSERT_TRUE(row5.ok());
  ASSERT_EQ(row5->size(), 1u);
  EXPECT_EQ(row5->front().second[2].AsInt(), 25);
  ASSERT_TRUE(db_.Commit(&reader).ok());

  // The writer sees its own uncommitted versions through the view's txn.
  auto own = db_.Select(&writer, "users", Eq(Col("id"), LitInt(5)));
  ASSERT_TRUE(own.ok());
  ASSERT_EQ(own->size(), 1u);
  EXPECT_EQ(own->front().second[2].AsInt(), 999);
  auto own_all = db_.Select(&writer, "users", nullptr);
  ASSERT_TRUE(own_all.ok());
  EXPECT_EQ(own_all->size(), 21u);
  ASSERT_TRUE(db_.Commit(&writer).ok());

  // After commit the versions are stamped and a fresh snapshot sees them.
  auto after = db_.BeginSession({"users"});
  auto all = db_.Select(&after, "users", nullptr);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 21u);
  ASSERT_TRUE(db_.Commit(&after).ok());
}

TEST_F(MvccTest, DeleteInvisibleUntilCommit) {
  auto writer = db_.BeginSession({"users"});
  auto n = db_.Delete(&writer, "users", Lt(Col("id"), LitInt(3)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);

  auto reader = db_.BeginSession({"users"});
  auto rows = db_.Select(&reader, "users", nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);  // Tombstones not yet committed.
  ASSERT_TRUE(db_.Commit(&reader).ok());

  ASSERT_TRUE(db_.Commit(&writer).ok());
  auto after = db_.BeginSession({"users"});
  auto left = db_.Select(&after, "users", nullptr);
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->size(), 17u);
  ASSERT_TRUE(db_.Commit(&after).ok());
}

TEST_F(MvccTest, AbortUnlinksPendingVersions) {
  auto s = db_.BeginSession({"users"});
  ASSERT_TRUE(db_.Insert(&s, "users",
                         Tuple{Value::Int(200), Value::Str("gone"),
                               Value::Int(1)})
                  .ok());
  ASSERT_TRUE(db_.Update(&s, "users", Eq(Col("id"), LitInt(7)),
                         [](const Tuple& t) {
                           Tuple u = t;
                           u[1] = Value::Str("mutated");
                           return u;
                         })
                  .ok());
  ASSERT_TRUE(db_.Delete(&s, "users", Eq(Col("id"), LitInt(8))).ok());
  ASSERT_TRUE(db_.Abort(&s).ok());

  // Everything rolled back: count, content, and the PK index (a lookup
  // by the aborted insert's key must miss, the survivor must hit).
  auto s2 = db_.BeginSession({"users"});
  auto all = db_.Select(&s2, "users", nullptr);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20u);
  auto gone = db_.Select(&s2, "users", Eq(Col("id"), LitInt(200)));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty());
  auto row7 = db_.Select(&s2, "users", Eq(Col("id"), LitInt(7)));
  ASSERT_TRUE(row7.ok());
  ASSERT_EQ(row7->size(), 1u);
  EXPECT_EQ(row7->front().second[1].AsString(), "u7");
  auto row8 = db_.Select(&s2, "users", Eq(Col("id"), LitInt(8)));
  ASSERT_TRUE(row8.ok());
  EXPECT_EQ(row8->size(), 1u);
  ASSERT_TRUE(db_.Commit(&s2).ok());

  // A duplicate-key insert (the classic abort-leak check) still works.
  auto s3 = db_.BeginSession({"users"});
  ASSERT_TRUE(db_.Insert(&s3, "users",
                         Tuple{Value::Int(200), Value::Str("back"),
                               Value::Int(2)})
                  .ok());
  ASSERT_TRUE(db_.Commit(&s3).ok());
}

TEST_F(MvccTest, GcPrunesShadowedVersions) {
  // Grow a chain on one row, with no snapshot pinned below the updates.
  for (int round = 0; round < 5; ++round) {
    auto s = db_.BeginSession({"users"});
    ASSERT_TRUE(db_.Update(&s, "users", Eq(Col("id"), LitInt(3)),
                           [round](const Tuple& t) {
                             Tuple u = t;
                             u[2] = Value::Int(1000 + round);
                             return u;
                           })
                    .ok());
    ASSERT_TRUE(db_.Commit(&s).ok());
  }
  // With nothing pinned the watermark is the visible clock: every
  // shadowed version is reclaimable. last_max_chain reports the length
  // observed *entering* a pass, so the first sweep prunes and the second
  // observes the pruned shape. (The write path may have pruned inline
  // already, so no freed count is asserted.)
  db_.version_gc().SweepOnce();
  db_.version_gc().SweepOnce();
  EXPECT_GE(db_.version_gc().passes(), 2u);
  EXPECT_EQ(db_.version_gc().last_max_chain(), 1u);

  auto s = db_.BeginSession({"users"});
  auto row = db_.Select(&s, "users", Eq(Col("id"), LitInt(3)));
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->size(), 1u);
  EXPECT_EQ(row->front().second[2].AsInt(), 1004);
  ASSERT_TRUE(db_.Commit(&s).ok());
}

TEST_F(MvccTest, PinnedSnapshotSurvivesGc) {
  Table* t = db_.catalog().FindTable("users");
  ASSERT_NE(t, nullptr);
  RowId rid;
  {
    auto s = db_.BeginSession({"users"});
    auto row = db_.Select(&s, "users", Eq(Col("id"), LitInt(4)));
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row->size(), 1u);
    rid = row->front().first;
    ASSERT_TRUE(db_.Commit(&s).ok());
  }

  auto pin = std::make_unique<mvcc::SnapshotManager::PinGuard>(
      &db_.txns().snapshots());
  {
    auto s = db_.BeginSession({"users"});
    ASSERT_TRUE(db_.Update(&s, "users", Eq(Col("id"), LitInt(4)),
                           [](const Tuple& t) {
                             Tuple u = t;
                             u[2] = Value::Int(4444);
                             return u;
                           })
                    .ok());
    ASSERT_TRUE(db_.Commit(&s).ok());
  }

  // The sweep must not reclaim the old version: the pinned view still
  // resolves to the pre-update tuple while latest reads see the new one.
  db_.version_gc().SweepOnce();
  EXPECT_GE(db_.version_gc().last_max_chain(), 2u);
  Tuple old_row;
  ASSERT_TRUE(t->ReadAt(rid, mvcc::ReadView{pin->ts(), 0}, &old_row).ok());
  EXPECT_EQ(old_row[2].AsInt(), 24);

  // Unpin; the watermark advances and the next sweep reclaims the chain
  // (a second pass observes the single-version shape).
  pin.reset();
  const uint64_t freed_before = db_.version_gc().versions_freed();
  db_.version_gc().SweepOnce();
  EXPECT_GT(db_.version_gc().versions_freed(), freed_before);
  db_.version_gc().SweepOnce();
  EXPECT_EQ(db_.version_gc().last_max_chain(), 1u);
  Tuple now;
  ASSERT_TRUE(
      t->ReadAt(rid, mvcc::ReadView{db_.txns().snapshots().visible(), 0}, &now)
          .ok());
  EXPECT_EQ(now[2].AsInt(), 4444);
}

// WAL replay rebuilds version chains to the same visible state: a
// replica applying the primary's log converges byte-for-byte, and its
// own snapshot reads work over the rebuilt chains.
TEST(MvccRecoveryTest, ReplayRebuildsVisibleState) {
  Database a;
  a.SetSnapshotReads(true);
  sql::SqlEngine engine(&a);
  MustExec(&engine,
           "CREATE TABLE kv (id INT PRIMARY KEY, score DOUBLE, name TEXT)");
  for (int i = 0; i < 40; ++i) {
    MustExec(&engine, "INSERT INTO kv VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i) + ".5, 'row" + std::to_string(i) +
                          "')");
  }
  MustExec(&engine, "UPDATE kv SET score = score + 100 WHERE id < 10");
  MustExec(&engine, "DELETE FROM kv WHERE id = 13");

  std::vector<LogRecord> records;
  a.txns().redo_log().ReadFrom(0, SIZE_MAX, &records);

  Database b;
  b.SetSnapshotReads(true);
  replication::LogApplier applier(&b, /*append_to_local_log=*/true);
  ASSERT_TRUE(applier.Apply(std::move(records)).ok());

  EXPECT_EQ(replication::DumpForDigest(&a), replication::DumpForDigest(&b));
  auto s = b.BeginSession({"kv"});
  auto rows = b.Select(&s, "kv", nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 39u);
  ASSERT_TRUE(b.Commit(&s).ok());
}

// The acceptance-critical path: with snapshot reads on, a checkpoint
// captured in the middle of a live lazy migration succeeds (no kBusy, no
// quiesce), embeds the migration, and a node restored from that blob plus
// the WAL suffix re-owns the migration and converges with the primary.
TEST(MvccCheckpointTest, QuiesceFreeCheckpointDuringMigration) {
  Database a;
  a.SetSnapshotReads(true);
  sql::SqlEngine engine(&a);
  MustExec(&engine,
           "CREATE TABLE kv (id INT PRIMARY KEY, score DOUBLE, name TEXT)");
  for (int i = 0; i < 50; ++i) {
    MustExec(&engine, "INSERT INTO kv VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i) + ".5, 'row" + std::to_string(i) +
                          "')");
  }

  // Background workers delayed well past the capture below, so the
  // checkpoint provably lands mid-migration; completion still arrives
  // (lazy completion only flips through the background sweep).
  MigrationController::SubmitOptions opts;
  opts.lazy.background_start_delay_ms = 3000;
  ASSERT_TRUE(engine
                  .SubmitMigrationScript(
                      "CREATE TABLE kv2 PRIMARY KEY (id) AS "
                      "SELECT id, name FROM kv; DROP TABLE kv;",
                      opts)
                  .ok());

  // Pull a slice lazily so the checkpoint straddles real migration marks.
  {
    auto s = a.BeginSession({"kv2"});
    auto rows = a.Select(&s, "kv2", Lt(Col("id"), LitInt(10)));
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows->size(), 10u);
    ASSERT_TRUE(a.Commit(&s).ok());
  }

  // Mid-migration capture succeeds — this exact call returns kBusy on
  // the legacy (snapshot-reads-off) path.
  std::string blob;
  ASSERT_TRUE(replication::CaptureCheckpoint(&a, &blob).ok());

  uint64_t wal_offset = 0;
  Database b;
  ASSERT_TRUE(replication::LoadCheckpoint(&b, blob, &wal_offset).ok());
  EXPECT_TRUE(b.controller().HasActiveMigration());
  EXPECT_FALSE(b.controller().IsComplete());

  // More post-checkpoint traffic on the primary: additional lazy pulls
  // and a write into the new schema.
  {
    auto s = a.BeginSession({"kv2"});
    auto rows = a.Select(
        &s, "kv2", And(Ge(Col("id"), LitInt(10)), Lt(Col("id"), LitInt(30))));
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows->size(), 20u);
    ASSERT_TRUE(a.Commit(&s).ok());
  }
  MustExec(&engine, "INSERT INTO kv2 VALUES (500, 'fresh')");

  // Ship the WAL suffix past the checkpoint offset, then let the restored
  // node own its half-done migration again (restart-as-primary path).
  std::vector<LogRecord> suffix;
  a.txns().redo_log().ReadFrom(wal_offset, SIZE_MAX, &suffix);
  replication::LogApplier applier(&b, /*append_to_local_log=*/true);
  ASSERT_TRUE(applier.Apply(std::move(suffix)).ok());
  ASSERT_TRUE(b.controller().RecoverFromRedoLog().ok());

  // Full scans pull every remaining granule on both sides. The pulls are
  // deterministic (same frozen source rids, same granule order), so the
  // independently-migrated rows land on identical rids.
  for (Database* db : {&a, &b}) {
    auto s = db->BeginSession({"kv2"});
    auto rows = db->Select(&s, "kv2", nullptr);
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows->size(), 51u);
    ASSERT_TRUE(db->Commit(&s).ok());
  }
  // Completion flips once each side's background sweep wakes and finds
  // nothing left; it then drops the retired input on both.
  for (Database* db : {&a, &b}) {
    for (int i = 0; i < 30000 && !db->controller().IsComplete(); ++i) {
      Clock::SleepMillis(1);
    }
    EXPECT_TRUE(db->controller().IsComplete());
  }
  EXPECT_EQ(replication::DumpForDigest(&a), replication::DumpForDigest(&b));
}

// Without an active migration the snapshot capture is exercised by the
// plain round-trip: v2 blobs restore tables, rids, and row content.
TEST(MvccCheckpointTest, SnapshotCaptureRoundTripsWithoutMigration) {
  Database a;
  a.SetSnapshotReads(true);
  sql::SqlEngine engine(&a);
  MustExec(&engine, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)");
  for (int i = 0; i < 25; ++i) {
    MustExec(&engine, "INSERT INTO t VALUES (" + std::to_string(i) + ", 'v" +
                          std::to_string(i) + "')");
  }
  MustExec(&engine, "DELETE FROM t WHERE id = 7");

  std::string blob;
  ASSERT_TRUE(replication::CaptureCheckpoint(&a, &blob).ok());
  Database b;
  uint64_t wal_offset = 0;
  ASSERT_TRUE(replication::LoadCheckpoint(&b, blob, &wal_offset).ok());
  EXPECT_EQ(wal_offset, a.txns().redo_log().size());
  EXPECT_EQ(replication::DumpForDigest(&a), replication::DumpForDigest(&b));
}

}  // namespace
}  // namespace bullfrog
