#include <thread>

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"

namespace bullfrog {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(SchemaBuilder("users")
                                    .AddColumn("id", ValueType::kInt64, false)
                                    .AddColumn("name", ValueType::kString)
                                    .AddColumn("age", ValueType::kInt64)
                                    .SetPrimaryKey({"id"})
                                    .Build())
                    .ok());
    auto s = db_.BeginSession({"users"});
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_.Insert(&s, "users",
                             Tuple{Value::Int(i),
                                   Value::Str("u" + std::to_string(i)),
                                   Value::Int(20 + i)})
                      .ok());
    }
    ASSERT_TRUE(db_.Commit(&s).ok());
  }

  Database db_;
};

TEST_F(DatabaseTest, SelectWithPredicate) {
  auto s = db_.BeginSession({"users"});
  auto rows = db_.Select(&s, "users", Eq(Col("id"), LitInt(5)));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front().second[1].AsString(), "u5");
  ASSERT_TRUE(db_.Commit(&s).ok());
}

TEST_F(DatabaseTest, InsertDuplicatePkFails) {
  auto s = db_.BeginSession({"users"});
  EXPECT_TRUE(db_.Insert(&s, "users",
                         Tuple{Value::Int(5), Value::Str("dup"),
                               Value::Int(1)})
                  .IsAlreadyExists());
  ASSERT_TRUE(db_.Abort(&s).ok());
}

TEST_F(DatabaseTest, UpdateAppliesUpdaterUnderPredicate) {
  auto s = db_.BeginSession({"users"});
  auto n = db_.Update(&s, "users", Gt(Col("age"), LitInt(35)),
                      [](const Tuple& t) {
                        Tuple u = t;
                        u[2] = Value::Int(t[2].AsInt() + 100);
                        return u;
                      });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);  // ages 36..39.
  ASSERT_TRUE(db_.Commit(&s).ok());
  auto s2 = db_.BeginSession({"users"});
  auto rows = db_.Select(&s2, "users", Gt(Col("age"), LitInt(100)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  ASSERT_TRUE(db_.Commit(&s2).ok());
}

TEST_F(DatabaseTest, DeleteRemovesMatchingRows) {
  auto s = db_.BeginSession({"users"});
  auto n = db_.Delete(&s, "users", Lt(Col("id"), LitInt(3)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  ASSERT_TRUE(db_.Commit(&s).ok());
  auto s2 = db_.BeginSession({"users"});
  auto rows = db_.Select(&s2, "users", nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 17u);
  ASSERT_TRUE(db_.Commit(&s2).ok());
}

TEST_F(DatabaseTest, AbortRollsBackAllSessionWrites) {
  auto s = db_.BeginSession({"users"});
  ASSERT_TRUE(db_.Insert(&s, "users",
                         Tuple{Value::Int(100), Value::Str("x"),
                               Value::Int(1)})
                  .ok());
  auto n = db_.Update(&s, "users", Eq(Col("id"), LitInt(1)),
                      [](const Tuple& t) {
                        Tuple u = t;
                        u[1] = Value::Str("changed");
                        return u;
                      });
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(db_.Abort(&s).ok());

  auto s2 = db_.BeginSession({"users"});
  auto inserted = db_.Select(&s2, "users", Eq(Col("id"), LitInt(100)));
  ASSERT_TRUE(inserted.ok());
  EXPECT_TRUE(inserted->empty());
  auto updated = db_.Select(&s2, "users", Eq(Col("id"), LitInt(1)));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->front().second[1].AsString(), "u1");
  ASSERT_TRUE(db_.Commit(&s2).ok());
}

TEST_F(DatabaseTest, SelectForUpdateBlocksConcurrentWriter) {
  auto s1 = db_.BeginSession({"users"});
  auto rows = db_.Select(&s1, "users", Eq(Col("id"), LitInt(2)),
                         /*for_update=*/true);
  ASSERT_TRUE(rows.ok());
  // A younger session's write must die (wait-die).
  auto s2 = db_.BeginSession({"users"});
  auto n = db_.Update(&s2, "users", Eq(Col("id"), LitInt(2)),
                      [](const Tuple& t) { return t; });
  EXPECT_TRUE(n.status().IsRetryable());
  ASSERT_TRUE(db_.Abort(&s2).ok());
  ASSERT_TRUE(db_.Commit(&s1).ok());
}

TEST_F(DatabaseTest, UpdatePredicateRecheckSkipsChangedRows) {
  // A row deleted between scan and lock must be skipped, not crash.
  auto s = db_.BeginSession({"users"});
  auto n = db_.Delete(&s, "users", Eq(Col("id"), LitInt(4)));
  ASSERT_TRUE(n.ok());
  auto m = db_.Update(&s, "users", Eq(Col("id"), LitInt(4)),
                      [](const Tuple& t) { return t; });
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, 0u);
  ASSERT_TRUE(db_.Commit(&s).ok());
}

TEST_F(DatabaseTest, BulkInsertBypassesSessions) {
  ASSERT_TRUE(db_.CreateTable(SchemaBuilder("bulk")
                                  .AddColumn("id", ValueType::kInt64, false)
                                  .SetPrimaryKey({"id"})
                                  .Build())
                  .ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 50; ++i) rows.push_back(Tuple{Value::Int(i)});
  ASSERT_TRUE(db_.BulkInsert("bulk", rows).ok());
  EXPECT_EQ(db_.catalog().FindTable("bulk")->NumLiveRows(), 50u);
}

TEST_F(DatabaseTest, EndToEndLazyMigrationThroughFacade) {
  // users -> names(id, name) + ages(id, age), then query through the
  // facade: lazy migration is transparent.
  MigrationPlan plan;
  plan.name = "split_users";
  plan.new_tables = {SchemaBuilder("names")
                         .AddColumn("id", ValueType::kInt64, false)
                         .AddColumn("name", ValueType::kString)
                         .SetPrimaryKey({"id"})
                         .Build(),
                     SchemaBuilder("ages")
                         .AddColumn("id", ValueType::kInt64, false)
                         .AddColumn("age", ValueType::kInt64)
                         .SetPrimaryKey({"id"})
                         .Build()};
  plan.retire_tables = {"users"};
  MigrationStatement stmt;
  stmt.name = "split";
  stmt.category = MigrationCategory::kOneToMany;
  stmt.input_tables = {"users"};
  stmt.output_tables = {"names", "ages"};
  stmt.provenance.AddPassThrough("id", "users", "id");
  stmt.provenance.AddPassThrough("name", "users", "name");
  stmt.provenance.AddPassThrough("age", "users", "age");
  stmt.row_transform =
      [](const Tuple& in) -> Result<std::vector<TargetRow>> {
    return std::vector<TargetRow>{TargetRow{0, Tuple{in[0], in[1]}},
                                  TargetRow{1, Tuple{in[0], in[2]}}};
  };
  plan.statements.push_back(std::move(stmt));

  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 20;
  opts.lazy.background_pause_us = 0;
  ASSERT_TRUE(db_.SubmitMigration(std::move(plan), opts).ok());

  // Old schema rejected immediately.
  {
    auto s = db_.BeginSession({"users"});
    EXPECT_FALSE(db_.Select(&s, "users", nullptr).ok());
    ASSERT_TRUE(db_.Abort(&s).ok());
  }
  // New schema queryable immediately; relevant tuple migrates on demand.
  {
    auto s = db_.BeginSession({"names"});
    auto rows = db_.Select(&s, "names", Eq(Col("id"), LitInt(3)));
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u);
    EXPECT_EQ(rows->front().second[1].AsString(), "u3");
    ASSERT_TRUE(db_.Commit(&s).ok());
  }
  // Writes against the new schema work mid-migration.
  {
    auto s = db_.BeginSession({"ages"});
    auto n = db_.Update(&s, "ages", Eq(Col("id"), LitInt(3)),
                        [](const Tuple& t) {
                          Tuple u = t;
                          u[1] = Value::Int(99);
                          return u;
                        });
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 1u);
    ASSERT_TRUE(db_.Commit(&s).ok());
  }
  // Background completes; totals line up; the client write survived.
  Stopwatch sw;
  while (!db_.controller().IsComplete() && sw.ElapsedMillis() < 10000) {
    Clock::SleepMillis(5);
  }
  ASSERT_TRUE(db_.controller().IsComplete());
  EXPECT_EQ(db_.catalog().FindTable("names")->NumLiveRows(), 20u);
  EXPECT_EQ(db_.catalog().FindTable("ages")->NumLiveRows(), 20u);
  auto s = db_.BeginSession({"ages"});
  auto rows = db_.Select(&s, "ages", Eq(Col("id"), LitInt(3)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->front().second[1].AsInt(), 99);
  ASSERT_TRUE(db_.Commit(&s).ok());
}

}  // namespace
}  // namespace bullfrog
