#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/btree.h"

namespace bullfrog {
namespace {

Tuple K(int64_t v) { return Tuple{Value::Int(v)}; }
Tuple K2(int64_t a, int64_t b) { return Tuple{Value::Int(a), Value::Int(b)}; }

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  std::vector<RowId> out;
  tree.Lookup(K(1), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, InsertAndLookup) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(K(5), 50));
  EXPECT_TRUE(tree.Insert(K(3), 30));
  EXPECT_TRUE(tree.Insert(K(7), 70));
  EXPECT_EQ(tree.size(), 3u);
  std::vector<RowId> out;
  tree.Lookup(K(3), &out);
  EXPECT_EQ(out, std::vector<RowId>{30});
  out.clear();
  tree.Lookup(K(4), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, DuplicateKeysDistinctRids) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(K(1), 10));
  EXPECT_TRUE(tree.Insert(K(1), 11));
  EXPECT_TRUE(tree.Insert(K(1), 12));
  EXPECT_FALSE(tree.Insert(K(1), 11));  // Exact duplicate ignored.
  EXPECT_EQ(tree.size(), 3u);
  std::vector<RowId> out;
  tree.Lookup(K(1), &out);
  EXPECT_EQ(out, (std::vector<RowId>{10, 11, 12}));  // Rid order.
}

TEST(BTreeTest, SplitsGrowHeightAndKeepOrder) {
  BTree tree;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree.Insert(K(i * 7919 % kN), static_cast<RowId>(i)));
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(kN));
  EXPECT_GE(tree.height(), 3);  // Fanout 32 -> at least 3 levels for 5000.
  ASSERT_TRUE(tree.CheckInvariants());
  // In-order traversal is sorted and complete.
  int64_t prev = -1;
  size_t count = 0;
  tree.ForEach([&](const Tuple& k, RowId) {
    EXPECT_GE(k[0].AsInt(), prev);
    prev = k[0].AsInt();
    ++count;
    return true;
  });
  EXPECT_EQ(count, static_cast<size_t>(kN));
}

TEST(BTreeTest, EraseRemovesExactEntry) {
  BTree tree;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(K(i), 1000 + i));
  EXPECT_TRUE(tree.Erase(K(50), 1050));
  EXPECT_FALSE(tree.Erase(K(50), 1050));  // Already gone.
  EXPECT_FALSE(tree.Erase(K(50), 9999));  // Wrong rid.
  EXPECT_FALSE(tree.Erase(K(5000), 1));   // Never existed.
  EXPECT_EQ(tree.size(), 99u);
  std::vector<RowId> out;
  tree.Lookup(K(50), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, RangeWithPrefixSemantics) {
  BTree tree;
  for (int64_t w = 1; w <= 3; ++w) {
    for (int64_t o = 1; o <= 10; ++o) {
      ASSERT_TRUE(tree.Insert(K2(w, o), static_cast<RowId>(w * 100 + o)));
    }
  }
  // Prefix probe: all entries with first cell == 2.
  std::vector<RowId> rids;
  tree.Range(Tuple{Value::Int(2)}, Tuple{Value::Int(2)},
             [&](const Tuple&, RowId rid) {
               rids.push_back(rid);
               return true;
             });
  ASSERT_EQ(rids.size(), 10u);
  for (size_t i = 0; i < rids.size(); ++i) {
    EXPECT_EQ(rids[i], 200 + i + 1);  // Ascending o within the prefix.
  }
  // Bounded range across prefixes.
  rids.clear();
  tree.Range(K2(1, 8), K2(2, 3), [&](const Tuple&, RowId rid) {
    rids.push_back(rid);
    return true;
  });
  EXPECT_EQ(rids, (std::vector<RowId>{108, 109, 110, 201, 202, 203}));
}

TEST(BTreeTest, RangeEarlyStop) {
  BTree tree;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(K(i), i));
  int seen = 0;
  tree.Range(K(0), K(99), [&](const Tuple&, RowId) { return ++seen < 5; });
  EXPECT_EQ(seen, 5);
}

class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesReferenceMultimapUnderRandomOps) {
  Rng rng(GetParam());
  BTree tree;
  std::set<std::pair<int64_t, RowId>> reference;
  for (int op = 0; op < 20000; ++op) {
    const int64_t key = rng.UniformRange(0, 500);
    const RowId rid = rng.Uniform(4);  // Few rids -> many duplicates.
    if (rng.Bernoulli(0.6)) {
      const bool inserted = tree.Insert(K(key), rid);
      EXPECT_EQ(inserted, reference.emplace(key, rid).second);
    } else {
      const bool erased = tree.Erase(K(key), rid);
      EXPECT_EQ(erased, reference.erase({key, rid}) > 0);
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants());
  // Point lookups agree everywhere.
  for (int64_t key = 0; key <= 500; ++key) {
    std::vector<RowId> got;
    tree.Lookup(K(key), &got);
    std::vector<RowId> want;
    for (auto it = reference.lower_bound({key, 0});
         it != reference.end() && it->first == key; ++it) {
      want.push_back(it->second);
    }
    ASSERT_EQ(got, want) << "key " << key;
  }
  // A full range scan agrees with the reference order.
  std::vector<std::pair<int64_t, RowId>> scanned;
  tree.Range(K(0), K(500), [&](const Tuple& k, RowId rid) {
    scanned.emplace_back(k[0].AsInt(), rid);
    return true;
  });
  std::vector<std::pair<int64_t, RowId>> expected(reference.begin(),
                                                  reference.end());
  EXPECT_EQ(scanned, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(3, 1337, 777777));

}  // namespace
}  // namespace bullfrog
