// Concurrency tests for the cross-shard migration coordinator, aimed at
// TSan: concurrent Submit racers (exactly one wins admission), concurrent
// routed queries during the drain, and Progress/IsComplete pollers racing
// the state transitions.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/router.h"
#include "shard/sharded_database.h"

namespace bullfrog::shard {
namespace {

MigrationController::SubmitOptions FastLazy() {
  MigrationController::SubmitOptions opts;
  opts.strategy = MigrationStrategy::kLazy;
  opts.lazy.background_start_delay_ms = 0;
  return opts;
}

bool WaitComplete(MigrationCoordinator& coord, int timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);
  while (!coord.IsComplete()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

TEST(ShardRaceTest, ConcurrentSubmitAdmitsExactlyOne) {
  ShardedDatabase db(4);
  Session setup(&db);
  ASSERT_TRUE(
      setup.Execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)").ok());
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(setup
                    .Execute("INSERT INTO kv VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i) + ")")
                    .ok());
  }

  // 8 racers submit the same script; admission is serialized under the
  // coordinator mutex, so exactly one wins and the rest see kBusy. The
  // background delay keeps the winner's migration draining past the race
  // window (an instant drain would legitimately admit a later racer).
  MigrationController::SubmitOptions slow = FastLazy();
  slow.lazy.background_start_delay_ms = 500;
  constexpr int kRacers = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> busy_count{0};
  std::vector<std::thread> racers;
  racers.reserve(kRacers);
  for (int t = 0; t < kRacers; ++t) {
    racers.emplace_back([&db, &ok_count, &busy_count, &slow] {
      Session s(&db);
      const Status st = s.SubmitMigrationScript(
          "CREATE TABLE kv2 PRIMARY KEY (id) AS "
          "SELECT id, val, val + 1 AS inc FROM kv; DROP TABLE kv;",
          slow);
      if (st.ok()) {
        ok_count.fetch_add(1);
      } else if (st.code() == StatusCode::kBusy) {
        busy_count.fetch_add(1);
      } else {
        ADD_FAILURE() << "unexpected submit status: " << st.ToString();
      }
    });
  }
  for (auto& t : racers) t.join();
  EXPECT_EQ(ok_count.load(), 1);
  EXPECT_EQ(busy_count.load(), kRacers - 1);

  ASSERT_TRUE(WaitComplete(db.coordinator(), 60));
  Session check(&db);
  auto r = check.Execute("SELECT COUNT(*) AS n FROM kv2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 128);
}

TEST(ShardRaceTest, QueriesAndPollersRaceTheDrain) {
  ShardedDatabase db(4);
  Session setup(&db);
  ASSERT_TRUE(
      setup.Execute("CREATE TABLE kv (id INT PRIMARY KEY, val INT)").ok());
  static constexpr int kRows = 256;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE(setup
                    .Execute("INSERT INTO kv VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i) + ")")
                    .ok());
  }

  std::atomic<bool> stop{false};

  // Pollers hammer the aggregate read paths while the state machine runs.
  std::vector<std::thread> pollers;
  for (int t = 0; t < 2; ++t) {
    pollers.emplace_back([&db, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const double p = db.coordinator().Progress();
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        (void)db.coordinator().IsComplete();
        (void)db.coordinator().TotalUnitsMigrated();
        (void)db.coordinator().StatusReport();
        (void)db.StatusReport();
      }
    });
  }

  // Query threads drive lazy migration from every shard via the router
  // (point reads) and the fan-out path (aggregates) while the background
  // migrators drain.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&db, &stop, t] {
      Session s(&db);
      int i = t * 37;
      while (!stop.load(std::memory_order_relaxed)) {
        auto point = s.Execute("SELECT inc FROM kv2 WHERE id = " +
                               std::to_string(i % kRows));
        // NotFound while the table is still old-schema is impossible here
        // (the submit below happens first), but kBusy retries are fine.
        if (point.ok() && !point->rows.empty()) {
          EXPECT_EQ(point->rows[0][0].AsInt(), i % kRows + 1);
        }
        auto agg = s.Execute("SELECT COUNT(*) AS n FROM kv2");
        if (agg.ok()) {
          EXPECT_EQ(agg->rows[0][0].AsInt(), kRows);
        }
        ++i;
      }
    });
  }

  Session submitter(&db);
  ASSERT_TRUE(submitter
                  .SubmitMigrationScript(
                      "CREATE TABLE kv2 PRIMARY KEY (id) AS "
                      "SELECT id, val, val + 1 AS inc FROM kv; DROP TABLE kv;",
                      FastLazy())
                  .ok());

  EXPECT_TRUE(WaitComplete(db.coordinator(), 60));
  stop.store(true);
  for (auto& t : readers) t.join();
  for (auto& t : pollers) t.join();

  EXPECT_DOUBLE_EQ(db.coordinator().Progress(), 1.0);
  auto r = submitter.Execute("SELECT COUNT(*) AS n, SUM(inc) AS s FROM kv2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), kRows);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(),
                   static_cast<double>(kRows) * (kRows + 1) / 2);
}

TEST(ShardRaceTest, BackToBackMigrationsSerialize) {
  ShardedDatabase db(2);
  Session s(&db);
  ASSERT_TRUE(s.Execute("CREATE TABLE t0 (id INT PRIMARY KEY, v INT)").ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(s.Execute("INSERT INTO t0 VALUES (" + std::to_string(i) +
                          ", " + std::to_string(i) + ")")
                    .ok());
  }
  // Chain three migrations back to back with no waiting: each overlapping
  // script either switches immediately (predecessor already drained) or
  // rides the migration train (kQueued) and auto-starts in order.
  for (int gen = 0; gen < 3; ++gen) {
    const std::string src = "t" + std::to_string(gen);
    const std::string dst = "t" + std::to_string(gen + 1);
    const Status st =
        s.SubmitMigrationScript("CREATE TABLE " + dst +
                                    " PRIMARY KEY (id) AS SELECT id, v "
                                    "FROM " + src + "; DROP TABLE " +
                                    src + ";",
                                FastLazy());
    ASSERT_TRUE(st.ok() || st.IsQueued()) << st.ToString();
  }
  ASSERT_TRUE(WaitComplete(db.coordinator(), 60));
  auto r = s.Execute("SELECT COUNT(*) AS n FROM t3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 32);
}

}  // namespace
}  // namespace bullfrog::shard
