#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace bullfrog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("row 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "row 42");
  EXPECT_EQ(s.ToString(), "NotFound: row 42");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::TxnAborted("x").IsRetryable());
  EXPECT_TRUE(Status::TxnConflict("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kTimedOut); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    BF_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
  auto succeeds = []() -> Status {
    BF_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("reached");
  };
  EXPECT_TRUE(succeeds().IsAlreadyExists());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("nope");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    BF_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRangeInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NURandStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NURand(1023, 1, 3000, 259);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 3000);
  }
}

TEST(RngTest, StringsHaveRequestedLengths) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const std::string s = rng.AlphaString(5, 9);
    EXPECT_GE(s.size(), 5u);
    EXPECT_LE(s.size(), 9u);
    const std::string n = rng.NumString(4, 4);
    EXPECT_EQ(n.size(), 4u);
    for (char c : n) EXPECT_TRUE(c >= '0' && c <= '9');
  }
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfGenerator zipf(1000, 0.99, 5);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    if (v < 100) ++low;
  }
  // With theta=0.99 the first 10% of ranks should draw well over half
  // the samples.
  EXPECT_GT(low, n / 2);
}

TEST(SpinLatchTest, MutualExclusionUnderContention) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard guard(latch);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(SpinLatchTest, TryLockFailsWhenHeld) {
  SpinLatch latch;
  latch.lock();
  EXPECT_FALSE(latch.try_lock());
  latch.unlock();
  EXPECT_TRUE(latch.try_lock());
  latch.unlock();
}

TEST(StripedLatchTest, SameIndexSameLatch) {
  StripedLatch<SpinLatch> striped(8);
  EXPECT_EQ(&striped.ForIndex(3), &striped.ForIndex(3));
  EXPECT_EQ(&striped.ForHash(42), &striped.ForHash(42));
  EXPECT_EQ(striped.stripes(), 8u);
}

TEST(ClockTest, StopwatchMeasuresElapsed) {
  Stopwatch sw;
  Clock::SleepMillis(20);
  EXPECT_GE(sw.ElapsedMillis(), 15);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 15);
}

}  // namespace
}  // namespace bullfrog
