// File-backed redo-log persistence + cross-"process" recovery of the
// §3.5 tracker state: writes flow through a LogFileWriter sink, a fresh
// process reads them back and rebuilds the bitmap/hashmap trackers.

#include <atomic>
#include <cstdio>
#include <thread>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "migration/bitmap_tracker.h"
#include "migration/statement_migrator.h"
#include "txn/log_file.h"
#include "txn/recovery.h"
#include "txn/txn_manager.h"

namespace bullfrog {
namespace {

class LogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "bf_log_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(LogFileTest, RoundTripAllValueTypes) {
  {
    LogFileWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    LogRecord r1;
    r1.txn_id = 7;
    r1.op = LogOp::kInsert;
    r1.table = "t";
    r1.rid = 42;
    r1.after = Tuple{Value::Int(-5), Value::Double(2.5), Value::Str("héllo"),
                     Value::Timestamp(99), Value::Null()};
    LogRecord r2;
    r2.txn_id = 7;
    r2.op = LogOp::kCommit;
    ASSERT_TRUE(writer.Append({r1, r2}).ok());
  }
  auto records = ReadLogFile(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  const LogRecord& r = (*records)[0];
  EXPECT_EQ(r.txn_id, 7u);
  EXPECT_EQ(r.op, LogOp::kInsert);
  EXPECT_EQ(r.table, "t");
  EXPECT_EQ(r.rid, 42u);
  ASSERT_EQ(r.after.size(), 5u);
  EXPECT_EQ(r.after[0].AsInt(), -5);
  EXPECT_DOUBLE_EQ(r.after[1].AsDouble(), 2.5);
  EXPECT_EQ(r.after[2].AsString(), "héllo");
  EXPECT_EQ(r.after[3].AsTimestamp(), 99);
  EXPECT_TRUE(r.after[4].is_null());
  EXPECT_EQ((*records)[1].op, LogOp::kCommit);
}

TEST_F(LogFileTest, AppendAcrossReopens) {
  for (int pass = 0; pass < 3; ++pass) {
    LogFileWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    LogRecord r;
    r.txn_id = static_cast<uint64_t>(pass);
    r.op = LogOp::kCommit;
    ASSERT_TRUE(writer.Append({r}).ok());
  }
  auto records = ReadLogFile(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[2].txn_id, 2u);
}

TEST_F(LogFileTest, TornTailIgnored) {
  {
    LogFileWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    LogRecord r;
    r.txn_id = 1;
    r.op = LogOp::kCommit;
    ASSERT_TRUE(writer.Append({r}).ok());
  }
  // Simulate a crash mid-write: append garbage that parses as a
  // truncated record header.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char garbage[] = {1, 2, 3};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);

  auto records = ReadLogFile(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);  // The torn tail is dropped.
}

TEST_F(LogFileTest, TruncatedTrailingRecordIsEndOfLog) {
  // Write two full records, then chop the file at every byte offset
  // inside the second record. Recovery must treat the truncated tail as
  // end-of-log: the first record always survives, never an error, and
  // never a phantom second record built from partial bytes.
  {
    LogFileWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    LogRecord r1;
    r1.txn_id = 3;
    r1.op = LogOp::kInsert;
    r1.table = "accounts";
    r1.rid = 11;
    r1.after = Tuple{Value::Int(1), Value::Str("alice")};
    ASSERT_TRUE(writer.Append({r1}).ok());
    LogRecord r2;
    r2.txn_id = 3;
    r2.op = LogOp::kUpdate;
    r2.table = "accounts";
    r2.rid = 11;
    r2.after = Tuple{Value::Int(1), Value::Str("bob"), Value::Double(0.5)};
    ASSERT_TRUE(writer.Append({r2}).ok());
  }
  auto full = ReadLogFile(path_);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), 2u);

  // Snapshot the intact bytes so each iteration can rewrite the file.
  std::string bytes;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  // Find where record 2 starts: re-serialize record 1 alone.
  const std::string solo_path = path_ + ".solo";
  {
    LogFileWriter writer;
    ASSERT_TRUE(writer.Open(solo_path).ok());
    LogRecord r1;
    r1.txn_id = 3;
    r1.op = LogOp::kInsert;
    r1.table = "accounts";
    r1.rid = 11;
    r1.after = Tuple{Value::Int(1), Value::Str("alice")};
    ASSERT_TRUE(writer.Append({r1}).ok());
  }
  size_t first_len = 0;
  {
    std::FILE* f = std::fopen(solo_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    first_len = static_cast<size_t>(std::ftell(f));
    std::fclose(f);
  }
  std::remove(solo_path.c_str());
  ASSERT_GT(first_len, 0u);
  ASSERT_LT(first_len, bytes.size());

  for (size_t cut = first_len; cut < bytes.size(); ++cut) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f), cut);
    std::fclose(f);
    auto records = ReadLogFile(path_);
    ASSERT_TRUE(records.ok()) << "cut at " << cut << ": " << records.status();
    ASSERT_EQ(records->size(), 1u) << "cut at " << cut;
    EXPECT_EQ((*records)[0].table, "accounts");
    EXPECT_EQ((*records)[0].after[1].AsString(), "alice");
  }
}

TEST_F(LogFileTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadLogFile(path_ + ".nope").status().IsNotFound());
}

TEST_F(LogFileTest, WriterErrorsWithoutOpen) {
  LogFileWriter writer;
  EXPECT_FALSE(writer.Append({}).ok());
  EXPECT_FALSE(writer.is_open());
}

TEST_F(LogFileTest, SinkMakesCommitsDurableAndRecoverable) {
  // "Process 1": run a partial migration with a file sink attached.
  {
    Catalog catalog;
    TransactionManager txns;
    auto writer = std::make_shared<LogFileWriter>();
    ASSERT_TRUE(writer->Open(path_).ok());
    txns.redo_log().SetSink(
        [writer](const std::vector<LogRecord>& batch) {
          return writer->Append(batch);
        });

    auto src = catalog.CreateTable(SchemaBuilder("src")
                                       .AddColumn("id", ValueType::kInt64,
                                                  false)
                                       .SetPrimaryKey({"id"})
                                       .Build());
    ASSERT_TRUE(src.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*src)->Insert(Tuple{Value::Int(i)}).ok());
    }
    ASSERT_TRUE(catalog.CreateTable(SchemaBuilder("dst")
                                        .AddColumn("id", ValueType::kInt64,
                                                   false)
                                        .SetPrimaryKey({"id"})
                                        .Build())
                    .ok());
    MigrationStatement stmt;
    stmt.name = "copy";
    stmt.category = MigrationCategory::kOneToOne;
    stmt.input_tables = {"src"};
    stmt.output_tables = {"dst"};
    stmt.provenance.AddPassThrough("id", "src", "id");
    stmt.row_transform =
        [](const Tuple& in) -> Result<std::vector<TargetRow>> {
      return std::vector<TargetRow>{TargetRow{0, in}};
    };
    auto m = MakeStatementMigrator(&catalog, &txns, std::move(stmt), {});
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(5))).ok());
    ASSERT_TRUE((*m)->MigrateForPredicate(Eq(Col("id"), LitInt(9))).ok());
  }  // "Crash": everything volatile is gone.

  // "Process 2": rebuild a fresh tracker and replay the log file.
  auto records = ReadLogFile(path_);
  ASSERT_TRUE(records.ok());
  RedoLog replayed;
  replayed.AppendRaw(std::move(*records));
  BitmapTracker tracker("bitmap:copy", 100);
  RecoverTrackerState(replayed, {{"bitmap:copy", &tracker}});
  EXPECT_EQ(tracker.MigratedCount(), 2u);
  EXPECT_TRUE(tracker.IsMigrated(5));
  EXPECT_TRUE(tracker.IsMigrated(9));
  EXPECT_FALSE(tracker.IsMigrated(6));
}

LogRecord Mark(const std::string& tracker_id, int unit) {
  LogRecord r;
  r.op = LogOp::kMigrationMark;
  r.table = tracker_id;
  r.after = Tuple{Value::Int(unit)};
  return r;
}

TEST_F(LogFileTest, FailedSinkBatchErrorsAndIsNeverRecovered) {
  // The sink fails the 2nd batch: that commit must error, earlier and
  // later commits must succeed, and recovery must never replay the
  // failed (unacked) commit.
  auto writer = std::make_shared<LogFileWriter>();
  ASSERT_TRUE(writer->Open(path_).ok());
  RedoLog log;
  std::atomic<int> batch_no{0};
  log.SetSink([&, writer](const std::vector<LogRecord>& batch) -> Status {
    if (batch_no.fetch_add(1) == 1) {
      return Status::Internal("injected I/O failure");
    }
    return writer->Append(batch);
  });

  // Sequential commits: each is its own group-commit batch.
  ASSERT_TRUE(log.AppendCommitted(1, {Mark("bitmap:copy", 1)}).ok());
  Status failed = log.AppendCommitted(2, {Mark("bitmap:copy", 2)});
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("injected I/O failure"), std::string::npos);
  ASSERT_TRUE(log.AppendCommitted(3, {Mark("bitmap:copy", 3)}).ok());
  // The failed commit is invisible in memory too: 2 commits x 2 records.
  EXPECT_EQ(log.size(), 4u);

  // "Crash" and recover from the file: units 1 and 3 were acked, unit 2
  // never was — recovery must not resurrect it.
  auto records = ReadLogFile(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);
  RedoLog replayed;
  replayed.AppendRaw(std::move(*records));
  BitmapTracker tracker("bitmap:copy", 10);
  RecoverTrackerState(replayed, {{"bitmap:copy", &tracker}});
  EXPECT_TRUE(tracker.IsMigrated(1));
  EXPECT_FALSE(tracker.IsMigrated(2));
  EXPECT_TRUE(tracker.IsMigrated(3));
  EXPECT_EQ(tracker.MigratedCount(), 2u);
}

TEST_F(LogFileTest, ConcurrentCommitsRecoverExactlyTheAckedSet) {
  // 8 committers race through the group-commit writer while the sink
  // fails every 4th batch. Whatever each committer observed (ack vs
  // error) must match exactly what recovery reconstructs: an acked
  // commit is always replayed, a failed one never is.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<bool> acked[kThreads * kPerThread] = {};
  {
    auto writer = std::make_shared<LogFileWriter>();
    ASSERT_TRUE(writer->Open(path_).ok());
    RedoLog log;
    std::atomic<int> batch_no{0};
    log.SetSink([&, writer](const std::vector<LogRecord>& batch) -> Status {
      if (batch_no.fetch_add(1) % 4 == 3) {
        return Status::Internal("injected I/O failure");
      }
      return writer->Append(batch);
    });
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const int unit = t * kPerThread + i;
          Status st = log.AppendCommitted(static_cast<uint64_t>(unit + 1),
                                          {Mark("bitmap:copy", unit)});
          acked[unit].store(st.ok());
        }
      });
    }
    for (auto& th : threads) th.join();
  }  // "Crash".

  auto records = ReadLogFile(path_);
  ASSERT_TRUE(records.ok());
  RedoLog replayed;
  replayed.AppendRaw(std::move(*records));
  BitmapTracker tracker("bitmap:copy", kThreads * kPerThread);
  RecoverTrackerState(replayed, {{"bitmap:copy", &tracker}});
  size_t expected = 0;
  for (int unit = 0; unit < kThreads * kPerThread; ++unit) {
    EXPECT_EQ(tracker.IsMigrated(static_cast<size_t>(unit)),
              acked[unit].load())
        << "unit " << unit;
    if (acked[unit].load()) ++expected;
  }
  EXPECT_EQ(tracker.MigratedCount(), expected);
}

TEST_F(LogFileTest, ReadLogFileReportsReadErrors) {
  // A directory opens for read but fread fails with EISDIR: ReadLogFile
  // must surface the I/O error instead of treating it as an empty log
  // with a torn tail (which would silently drop committed transactions).
  EXPECT_EQ(ReadLogFile(::testing::TempDir()).status().code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace bullfrog
