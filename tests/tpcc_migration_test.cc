#include <atomic>
#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "bullfrog/database.h"
#include "common/clock.h"
#include "query/scan.h"
#include "tpcc/cols.h"
#include "tpcc/loader.h"
#include "tpcc/migrations.h"
#include "tpcc/schema.h"
#include "tpcc/transactions.h"
#include "tpcc/workload.h"

namespace bullfrog::tpcc {
namespace {

class TpccMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scale_ = Scale::Small();
    scale_.warehouses = 2;  // Exercise cross-warehouse joins.
    ASSERT_TRUE(CreateTpccTables(&db_).ok());
    ASSERT_TRUE(LoadTpcc(&db_, scale_).ok());
    txns_ = std::make_unique<Transactions>(&db_, scale_);
  }

  MigrationController::SubmitOptions LazyOpts() {
    MigrationController::SubmitOptions opts;
    opts.strategy = MigrationStrategy::kLazy;
    opts.lazy.background_start_delay_ms = 30;
    opts.lazy.background_pause_us = 0;
    opts.lazy.background_batch = 32;
    return opts;
  }

  void WaitComplete(int timeout_ms = 30000) {
    Stopwatch sw;
    while (!db_.controller().IsComplete() &&
           sw.ElapsedMillis() < timeout_ms) {
      Clock::SleepMillis(5);
    }
    ASSERT_TRUE(db_.controller().IsComplete());
  }

  uint64_t Count(const char* table) {
    Table* t = db_.catalog().FindTable(table);
    return t == nullptr ? 0 : t->NumLiveRows();
  }

  /// Runs `n` mixed transactions on each of `threads` workers; retryable
  /// and rollback failures are tolerated, anything else fails the test.
  void RunWorkload(int threads, int n, uint64_t seed) {
    std::vector<std::thread> workers;
    std::atomic<int> hard_errors{0};
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        WorkloadGenerator gen(scale_, seed + static_cast<uint64_t>(w));
        for (int i = 0; i < n; ++i) {
          Status s = gen.Execute(txns_.get(), gen.NextType());
          if (!s.ok() && !s.IsRetryable() && !s.IsConstraintViolation() &&
              s.code() != StatusCode::kTimedOut) {
            ADD_FAILURE() << "workload error: " << s.ToString();
            hard_errors.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    ASSERT_EQ(hard_errors.load(), 0);
  }

  Scale scale_;
  Database db_;
  std::unique_ptr<Transactions> txns_;
};

TEST_F(TpccMigrationTest, CustomerSplitLazyUnderConcurrentLoad) {
  const uint64_t customers = Count(kCustomer);
  ASSERT_TRUE(db_.SubmitMigration(CustomerSplitPlan(), LazyOpts()).ok());
  txns_->set_version(SchemaVersion::kCustomerSplit);  // Big flip.

  RunWorkload(/*threads=*/4, /*n=*/120, /*seed=*/11);
  WaitComplete();

  // Exactly-once: every customer appears once in both halves — the PKs
  // reject duplicates, the counts prove completeness.
  EXPECT_EQ(Count(kCustomerPrivate), customers);
  EXPECT_EQ(Count(kCustomerPublic), customers);
  EXPECT_EQ(db_.catalog().GetState(kCustomer), TableState::kDropped);

  // Post-migration transactions run normally.
  Transactions::PaymentParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_w_id = 1;
  p.c_d_id = 1;
  p.c_id = 1;
  p.amount = 10;
  EXPECT_TRUE(txns_->Payment(p).ok());
}

TEST_F(TpccMigrationTest, CustomerSplitOnConflictMode) {
  const uint64_t customers = Count(kCustomer);
  auto opts = LazyOpts();
  opts.lazy.duplicate_detection = DuplicateDetection::kOnConflictClause;
  ASSERT_TRUE(db_.SubmitMigration(CustomerSplitPlan(), opts).ok());
  txns_->set_version(SchemaVersion::kCustomerSplit);
  RunWorkload(4, 100, 23);
  WaitComplete();
  EXPECT_EQ(Count(kCustomerPrivate), customers);
  EXPECT_EQ(Count(kCustomerPublic), customers);
}

TEST_F(TpccMigrationTest, CustomerSplitEagerPreservesColumnValues) {
  // Capture a customer row, migrate eagerly, verify the split halves.
  Table* customer = db_.catalog().FindTable(kCustomer);
  Tuple original;
  ASSERT_TRUE(customer->Read(0, &original).ok());

  auto opts = LazyOpts();
  opts.strategy = MigrationStrategy::kEager;
  ASSERT_TRUE(db_.SubmitMigration(CustomerSplitPlan(), opts).ok());
  EXPECT_TRUE(db_.controller().IsComplete());

  Table* priv = db_.catalog().FindTable(kCustomerPrivate);
  auto rows = CollectWhere(
      *priv, And(And(Eq(Col("c_w_id"), Lit(original[col::cust::kWId])),
                     Eq(Col("c_d_id"), Lit(original[col::cust::kDId]))),
                 Eq(Col("c_id"), Lit(original[col::cust::kId]))));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const Tuple& split = rows->front().second;
  EXPECT_EQ(split[col::cpriv::kBalance], original[col::cust::kBalance]);
  EXPECT_EQ(split[col::cpriv::kCredit], original[col::cust::kCredit]);
  EXPECT_EQ(split[col::cpriv::kDiscount], original[col::cust::kDiscount]);

  Table* pub = db_.catalog().FindTable(kCustomerPublic);
  auto pub_rows = CollectWhere(
      *pub, And(And(Eq(Col("c_w_id"), Lit(original[col::cust::kWId])),
                    Eq(Col("c_d_id"), Lit(original[col::cust::kDId]))),
                Eq(Col("c_id"), Lit(original[col::cust::kId]))));
  ASSERT_TRUE(pub_rows.ok());
  ASSERT_EQ(pub_rows->size(), 1u);
  EXPECT_EQ(pub_rows->front().second[col::cpub::kLast],
            original[col::cust::kLast]);
}

TEST_F(TpccMigrationTest, CustomerSplitWithForeignKeysCompletes) {
  // Fig 12 configuration: FKs declared on the new schema force extra
  // checks (and parent reads) per migrated row; the result must still be
  // complete and exact.
  const uint64_t customers = Count(kCustomer);
  ASSERT_TRUE(
      db_.SubmitMigration(CustomerSplitPlan(CustomerFk::kOrdersAndDistrict),
                          LazyOpts())
          .ok());
  txns_->set_version(SchemaVersion::kCustomerSplit);
  WaitComplete();
  EXPECT_EQ(Count(kCustomerPrivate), customers);
  EXPECT_EQ(Count(kCustomerPublic), customers);
}

TEST_F(TpccMigrationTest, OrderTotalLazyMatchesGroundTruth) {
  ASSERT_TRUE(db_.SubmitMigration(OrderTotalPlan(), LazyOpts()).ok());
  txns_->set_version(SchemaVersion::kOrderTotal);
  RunWorkload(4, 120, 37);
  WaitComplete();

  // Quiesced: every order's total must equal the SUM over its (still
  // active) order_line rows — whether the aggregate row was produced by
  // lazy migration, background migration, or application maintenance.
  Table* order_line = db_.catalog().FindTable(kOrderLine);
  std::map<std::tuple<int64_t, int64_t, int64_t>, double> ground_truth;
  order_line->Scan([&](RowId, const Tuple& l) {
    ground_truth[{l[col::ol::kWId].AsInt(), l[col::ol::kDId].AsInt(),
                  l[col::ol::kOId].AsInt()}] +=
        l[col::ol::kAmount].AsDouble();
    return true;
  });
  Table* order_total = db_.catalog().FindTable(kOrderTotal);
  uint64_t checked = 0;
  order_total->Scan([&](RowId, const Tuple& t) {
    auto it = ground_truth.find({t[col::ot::kWId].AsInt(),
                                 t[col::ot::kDId].AsInt(),
                                 t[col::ot::kOId].AsInt()});
    EXPECT_NE(it, ground_truth.end());
    if (it != ground_truth.end()) {
      EXPECT_NEAR(t[col::ot::kTotal].AsDouble(), it->second, 1e-6)
          << "order (" << t[col::ot::kWId].AsInt() << ","
          << t[col::ot::kDId].AsInt() << "," << t[col::ot::kOId].AsInt()
          << ")";
    }
    ++checked;
    return true;
  });
  // Every order with lines has an aggregate row.
  EXPECT_EQ(checked, ground_truth.size());
}

TEST_F(TpccMigrationTest, JoinLazyProducesExactJoin) {
  const uint64_t lines = Count(kOrderLine);
  ASSERT_TRUE(db_.SubmitMigration(OrderlineStockPlan(), LazyOpts()).ok());
  txns_->set_version(SchemaVersion::kOrderlineStock);

  // Read-mostly load during the join migration (no NewOrder, so the
  // expected join size is exactly boundary_lines x warehouses — the
  // loader stocks every item in every warehouse).
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      WorkloadGenerator gen(scale_, 91 + static_cast<uint64_t>(w));
      for (int i = 0; i < 60; ++i) {
        Status s;
        if (i % 2 == 0) {
          s = txns_->StockLevel(gen.GenStockLevel());
        } else {
          s = txns_->OrderStatus(gen.GenOrderStatus());
        }
        if (!s.ok() && !s.IsRetryable()) {
          ADD_FAILURE() << s.ToString();
          return;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  WaitComplete();
  EXPECT_EQ(Count(kOrderlineStock),
            lines * static_cast<uint64_t>(scale_.warehouses));
  EXPECT_EQ(db_.catalog().GetState(kOrderLine), TableState::kDropped);
  EXPECT_EQ(db_.catalog().GetState(kStock), TableState::kDropped);
}

TEST_F(TpccMigrationTest, JoinNewOrderAfterMigrationInsertsJoinedRows) {
  ASSERT_TRUE(db_.SubmitMigration(OrderlineStockPlan(), LazyOpts()).ok());
  txns_->set_version(SchemaVersion::kOrderlineStock);
  WaitComplete();
  const uint64_t before = Count(kOrderlineStock);
  Transactions::NewOrderParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 1;
  p.lines = {{3, 1, 2}};
  ASSERT_TRUE(txns_->NewOrder(p).ok());
  // Insert-only denormalization: one joined row per line, carrying the
  // supply warehouse's stock snapshot.
  EXPECT_EQ(Count(kOrderlineStock), before + 1);
}

TEST_F(TpccMigrationTest, MultiStepCustomerSplitPropagatesWrites) {
  auto opts = LazyOpts();
  opts.strategy = MigrationStrategy::kMultiStep;
  opts.multistep.batch = 4;  // Slow copier so the payment lands mid-copy.
  opts.multistep.pause_us = 2000;
  ASSERT_TRUE(db_.SubmitMigration(CustomerSplitPlan(), opts).ok());
  // Old-version transactions keep running against the old schema while
  // the copier works (unless the copier already finished — it can win the
  // race on tiny data sets).
  if (!db_.controller().IsComplete()) {
    EXPECT_FALSE(db_.controller().UsesNewSchema());
  }
  Transactions::PaymentParams p;
  p.w_id = 1;
  p.d_id = 1;
  p.c_w_id = 1;
  p.c_d_id = 1;
  p.c_id = 7;
  p.amount = 55.5;
  Status pay = txns_->Payment(p);
  ASSERT_TRUE(pay.ok()) << pay.ToString();
  // Read the authoritative old-schema balance after the write.
  double expected = 0;
  {
    auto s = db_.BeginSession({kCustomer});
    auto rows = db_.Select(
        &s, kCustomer,
        And(And(Eq(Col("c_w_id"), LitInt(1)), Eq(Col("c_d_id"), LitInt(1))),
            Eq(Col("c_id"), LitInt(7))));
    ASSERT_TRUE(rows.ok());
    expected = (*rows)[0].second[col::cust::kBalance].AsDouble();
    ASSERT_TRUE(db_.Commit(&s).ok());
  }
  WaitComplete();
  EXPECT_TRUE(db_.controller().UsesNewSchema());
  Table* priv = db_.catalog().FindTable(kCustomerPrivate);
  auto rows = CollectWhere(
      *priv, And(And(Eq(Col("c_w_id"), LitInt(1)),
                     Eq(Col("c_d_id"), LitInt(1))),
                 Eq(Col("c_id"), LitInt(7))));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ(rows->front().second[col::cpriv::kBalance].AsDouble(),
                   expected);
  EXPECT_EQ(Count(kCustomerPrivate), static_cast<uint64_t>(
                                         scale_.total_customers()));
}

TEST_F(TpccMigrationTest, LazyRecoveryMidMigrationStaysExact) {
  const uint64_t customers = Count(kCustomer);
  auto opts = LazyOpts();
  opts.enable_background = false;
  ASSERT_TRUE(db_.SubmitMigration(CustomerSplitPlan(), opts).ok());
  txns_->set_version(SchemaVersion::kCustomerSplit);
  // Touch a few customers to migrate some units.
  RunWorkload(2, 40, 77);
  const uint64_t migrated = Count(kCustomerPrivate);
  ASSERT_GT(migrated, 0u);
  // Crash + §3.5 recovery: trackers rebuilt from the redo log.
  ASSERT_TRUE(db_.controller().RecoverFromRedoLog().ok());
  // Workload resumes; no duplicates may appear (the PKs would reject
  // them and fail transactions with non-retryable errors).
  RunWorkload(2, 40, 78);
  EXPECT_GE(Count(kCustomerPrivate), migrated);
  EXPECT_LE(Count(kCustomerPrivate), customers);
}

}  // namespace
}  // namespace bullfrog::tpcc
