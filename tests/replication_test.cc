// Replication subsystem tests: checkpoint round-trips, checkpoint-aware
// WAL-directory recovery (identical output with and without a checkpoint,
// plus segment GC), idempotent replicated tracker marks safe against a
// concurrently completing migration, and the end-to-end acceptance test:
// clients read from a live replica while the primary runs a wire-driven
// lazy migration to completion, then both sides converge byte-for-byte.

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "migration/replication_log.h"
#include "replication/applier.h"
#include "replication/checkpoint.h"
#include "replication/replica.h"
#include "replication/wal_dir.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"
#include "sql/migration_compiler.h"
#include "sql/parser.h"

namespace bullfrog::replication {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "bf_repl_" + tag + "_" +
                          std::to_string(Clock::NowMicros());
  fs::remove_all(dir);
  return dir;
}

void MustExec(sql::SqlEngine* engine, const std::string& stmt) {
  auto r = engine->Execute(stmt);
  ASSERT_TRUE(r.ok()) << stmt << ": " << r.status();
}

/// The shared workload for the recovery tests: DDL + inserts + updates +
/// a delete, all through the SQL engine so everything flows into the
/// redo log. Deterministic, so two databases running it end up with
/// identical dumps.
void RunWorkload(sql::SqlEngine* engine, int phase) {
  if (phase == 1) {
    MustExec(engine,
             "CREATE TABLE kv (id INT PRIMARY KEY, score DOUBLE, name TEXT)");
    for (int i = 0; i < 50; ++i) {
      MustExec(engine, "INSERT INTO kv VALUES (" + std::to_string(i) + ", " +
                           std::to_string(i) + ".5, 'row" + std::to_string(i) +
                           "')");
    }
    MustExec(engine, "DELETE FROM kv WHERE id = 13");
    return;
  }
  for (int i = 50; i < 100; ++i) {
    MustExec(engine, "INSERT INTO kv VALUES (" + std::to_string(i) + ", 0.0, "
                     "NULL)");
  }
  MustExec(engine, "UPDATE kv SET score = score + 100 WHERE id < 10");
  MustExec(engine, "DELETE FROM kv WHERE id = 77");
}

TEST(CheckpointTest, RoundTripPreservesDumpRidsAndIndexes) {
  Database a;
  sql::SqlEngine engine(&a);
  RunWorkload(&engine, 1);
  ASSERT_TRUE(
      a.CreateIndex("kv", "kv_by_name", {"name"}, /*unique=*/false).ok());

  std::string blob;
  ASSERT_TRUE(CaptureCheckpoint(&a, &blob).ok());

  Database b;
  uint64_t wal_offset = 0;
  ASSERT_TRUE(LoadCheckpoint(&b, blob, &wal_offset).ok());
  EXPECT_EQ(wal_offset, a.txns().redo_log().size());
  EXPECT_EQ(DumpForDigest(&a), DumpForDigest(&b));

  // Physical layout survives: same rid horizon (the id=13 tombstone is a
  // gap, not a compaction), and the secondary index was rebuilt.
  Table* ta = a.catalog().FindTable("kv");
  Table* tb = b.catalog().FindTable("kv");
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(ta->NumAllocatedRows(), tb->NumAllocatedRows());
  EXPECT_EQ(ta->NumLiveRows(), tb->NumLiveRows());
  EXPECT_NE(tb->FindIndex("kv_by_name"), nullptr);

  // A truncated blob fails cleanly instead of half-loading.
  Database c;
  uint64_t ignored;
  EXPECT_FALSE(
      LoadCheckpoint(&c, blob.substr(0, blob.size() / 2), &ignored).ok());
}

TEST(CheckpointTest, BusyWhileMigrationInFlight) {
  Database db;
  sql::SqlEngine engine(&db);
  RunWorkload(&engine, 1);

  MigrationController::SubmitOptions opts;
  opts.enable_background = false;  // Keep it in flight forever.
  ASSERT_TRUE(engine
                  .SubmitMigrationScript(
                      "CREATE TABLE kv2 PRIMARY KEY (id) AS "
                      "SELECT id, name FROM kv; DROP TABLE kv;",
                      opts)
                  .ok());
  std::string blob;
  const Status s = CaptureCheckpoint(&db, &blob);
  EXPECT_EQ(s.code(), StatusCode::kBusy) << s;
}

// Satellite: checkpoint-aware startup. The same workload recovered (a)
// through a mid-workload checkpoint plus WAL suffix and (b) from the full
// log with no checkpoint must produce identical logical dumps; the
// checkpoint also garbage-collects the segments it supersedes.
TEST(WalDirTest, RecoveryIdenticalWithAndWithoutCheckpoint) {
  const std::string dir_ckpt = FreshDir("ckpt");
  const std::string dir_plain = FreshDir("plain");
  std::string live_dump;

  {
    Database a;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir_ckpt).ok());
    ASSERT_TRUE(wal.StartLogging(&a).ok());
    sql::SqlEngine engine(&a);
    RunWorkload(&engine, 1);
    ASSERT_TRUE(wal.Checkpoint(&a).ok());
    RunWorkload(&engine, 2);
    live_dump = DumpForDigest(&a);
  }
  {
    Database b;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir_plain).ok());
    ASSERT_TRUE(wal.StartLogging(&b).ok());
    sql::SqlEngine engine(&b);
    RunWorkload(&engine, 1);
    RunWorkload(&engine, 2);
    ASSERT_EQ(DumpForDigest(&b), live_dump);
  }

  // GC: the pre-checkpoint segment is gone, one checkpoint remains.
  int segments = 0, ckpts = 0;
  uint64_t ckpt_offset = 0;
  for (const auto& entry : fs::directory_iterator(dir_ckpt)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) ++segments;
    if (name.rfind("ckpt-", 0) == 0) {
      ++ckpts;
      ckpt_offset = std::strtoull(name.c_str() + 5, nullptr, 10);
    }
  }
  EXPECT_EQ(ckpts, 1);
  EXPECT_EQ(segments, 1) << "superseded segment was not collected";
  EXPECT_GT(ckpt_offset, 0u);

  // Recover both directories into fresh databases: identical output.
  {
    Database r;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir_ckpt).ok());
    ASSERT_TRUE(wal.Recover(&r).ok());
    EXPECT_EQ(wal.base(), ckpt_offset);
    EXPECT_EQ(DumpForDigest(&r), live_dump);
  }
  {
    Database r;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir_plain).ok());
    ASSERT_TRUE(wal.Recover(&r).ok());
    EXPECT_EQ(wal.base(), 0u);
    EXPECT_EQ(DumpForDigest(&r), live_dump);
  }

  fs::remove_all(dir_ckpt);
  fs::remove_all(dir_plain);
}

// A restart right after a checkpoint (empty suffix) and repeated
// checkpoint/restart cycles keep working — the base offset accumulates.
TEST(WalDirTest, RestartAfterCheckpointAndCheckpointAgain) {
  const std::string dir = FreshDir("cycle");
  std::string dump1;
  {
    Database a;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir).ok());
    ASSERT_TRUE(wal.StartLogging(&a).ok());
    sql::SqlEngine engine(&a);
    RunWorkload(&engine, 1);
    ASSERT_TRUE(wal.Checkpoint(&a).ok());
    dump1 = DumpForDigest(&a);
  }
  {
    Database b;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir).ok());
    ASSERT_TRUE(wal.Recover(&b).ok());
    EXPECT_EQ(DumpForDigest(&b), dump1);
    ASSERT_TRUE(wal.StartLogging(&b).ok());
    sql::SqlEngine engine(&b);
    RunWorkload(&engine, 2);
    ASSERT_TRUE(wal.Checkpoint(&b).ok());
    dump1 = DumpForDigest(&b);
  }
  {
    Database c;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir).ok());
    ASSERT_TRUE(wal.Recover(&c).ok());
    EXPECT_EQ(DumpForDigest(&c), dump1);
  }
  fs::remove_all(dir);
}

void PlantFile(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  std::FILE* f = std::fopen((fs::path(dir) / name).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// Satellite: recovery fallback. A corrupt newest checkpoint must not
// abort recovery — it falls back to the next-older checkpoint (here: the
// real one it supersedes) and replays the WAL suffix on top.
TEST(WalDirTest, CorruptNewestCheckpointFallsBackToOlder) {
  const std::string dir = FreshDir("corrupt_newest");
  std::string live_dump;
  uint64_t real_ckpt_offset = 0;
  {
    Database a;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir).ok());
    ASSERT_TRUE(wal.StartLogging(&a).ok());
    sql::SqlEngine engine(&a);
    RunWorkload(&engine, 1);
    ASSERT_TRUE(wal.Checkpoint(&a).ok());
    RunWorkload(&engine, 2);
    live_dump = DumpForDigest(&a);
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0) {
      real_ckpt_offset = std::strtoull(name.c_str() + 5, nullptr, 10);
    }
  }
  ASSERT_GT(real_ckpt_offset, 0u);
  // A "newer" checkpoint that is pure garbage (as a torn write against a
  // non-durable filesystem would leave behind).
  PlantFile(dir, "ckpt-999999999.bf", "definitely not a checkpoint blob");

  Database r;
  WalDir wal;
  ASSERT_TRUE(wal.Open(dir).ok());
  ASSERT_TRUE(wal.Recover(&r).ok());
  EXPECT_EQ(wal.base(), real_ckpt_offset);
  EXPECT_EQ(DumpForDigest(&r), live_dump);
  fs::remove_all(dir);
}

// Satellite: when every checkpoint is unusable but the WAL still starts
// at offset 0, recovery degrades to a plain full-log replay. Overflowing
// segment names (strtoull would saturate) are rejected, not mis-sorted
// into the replay order.
TEST(WalDirTest, AllCheckpointsCorruptFallsBackToFullReplay) {
  const std::string dir = FreshDir("all_corrupt");
  std::string live_dump;
  {
    Database a;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir).ok());
    ASSERT_TRUE(wal.StartLogging(&a).ok());
    sql::SqlEngine engine(&a);
    RunWorkload(&engine, 1);
    RunWorkload(&engine, 2);
    live_dump = DumpForDigest(&a);
  }
  PlantFile(dir, "ckpt-7.bf", "garbage one");
  PlantFile(dir, "ckpt-42.bf", "garbage two");
  // Numeric part overflows uint64_t; must be ignored entirely.
  PlantFile(dir, "wal-99999999999999999999999.log", "not a wal segment");

  Database r;
  WalDir wal;
  ASSERT_TRUE(wal.Open(dir).ok());
  ASSERT_TRUE(wal.Recover(&r).ok());
  EXPECT_EQ(wal.base(), 0u);
  EXPECT_EQ(DumpForDigest(&r), live_dump);
  fs::remove_all(dir);
}

// Satellite: the unrecoverable case is an explicit error, not silent
// data loss. The checkpoint GC'd the early WAL segments; if that
// checkpoint then turns out corrupt, replaying the surviving suffix
// alone would drop the GC'd records — recovery must refuse.
TEST(WalDirTest, CorruptCheckpointWithGcdWalIsExplicitError) {
  const std::string dir = FreshDir("gcd_wal");
  {
    Database a;
    WalDir wal;
    ASSERT_TRUE(wal.Open(dir).ok());
    ASSERT_TRUE(wal.StartLogging(&a).ok());
    sql::SqlEngine engine(&a);
    RunWorkload(&engine, 1);
    ASSERT_TRUE(wal.Checkpoint(&a).ok());  // GCs the pre-checkpoint segment.
    RunWorkload(&engine, 2);
  }
  // Corrupt the (only) checkpoint in place.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0) {
      PlantFile(dir, name, "now it is garbage");
    }
  }

  Database r;
  WalDir wal;
  ASSERT_TRUE(wal.Open(dir).ok());
  const Status s = wal.Recover(&r);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unrecoverable"), std::string::npos) << s;
  fs::remove_all(dir);
}

// Satellite: replicated tracker re-marking is idempotent and safe against
// a concurrently completing migration (no crash or state corruption when
// marks arrive for a controller whose state is gone or complete).
TEST(ReplicatedMarkTest, IdempotentAndSafeAfterCompletion) {
  Database db;
  sql::SqlEngine engine(&db);
  MustExec(&engine, "CREATE TABLE src (id INT PRIMARY KEY, v INT)");
  for (int i = 0; i < 10; ++i) {
    MustExec(&engine, "INSERT INTO src VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i * 7) + ")");
  }

  // No migration at all: marks are a clean no-op.
  ASSERT_TRUE(db.controller()
                  .ApplyReplicatedMark("bitmap:populate_dst",
                                       Tuple{Value::Int(0)})
                  .ok());

  // Replay a "migrate" DDL record end to end through the applier, with a
  // non-default granularity riding in the blob: 10 rows / granularity 5
  // = 2 units, so one mark is half the progress.
  const std::string script =
      "CREATE TABLE dst PRIMARY KEY (id) AS SELECT id, v FROM src; "
      "DROP TABLE src;";
  std::string blob;
  EncodeMigrateBlob(&blob, MigrationStrategy::kLazy, /*granularity=*/5,
                    script);
  LogRecord commit;
  commit.op = LogOp::kCommit;
  LogApplier applier(&db, /*append_to_local_log=*/false);
  ASSERT_TRUE(
      applier.Apply({MakeDdlRecord("migrate", blob), commit}).ok());

  ASSERT_TRUE(db.controller().HasActiveMigration());
  EXPECT_EQ(db.catalog().GetState("src"), TableState::kRetired);
  EXPECT_EQ(db.catalog().GetState("dst"), TableState::kActive);
  EXPECT_NEAR(db.controller().Progress(), 0.0, 1e-9);

  const std::string tracker = "bitmap:populate_dst";
  ASSERT_TRUE(
      db.controller().ApplyReplicatedMark(tracker, Tuple{Value::Int(0)}).ok());
  EXPECT_NEAR(db.controller().Progress(), 0.5, 1e-9);
  // Re-delivering the same mark must not double-count.
  ASSERT_TRUE(
      db.controller().ApplyReplicatedMark(tracker, Tuple{Value::Int(0)}).ok());
  EXPECT_NEAR(db.controller().Progress(), 0.5, 1e-9);
  // Out-of-range granules and unknown trackers are absorbed.
  ASSERT_TRUE(
      db.controller().ApplyReplicatedMark(tracker, Tuple{Value::Int(99)}).ok());
  ASSERT_TRUE(db.controller()
                  .ApplyReplicatedMark("bitmap:nonsense", Tuple{Value::Int(1)})
                  .ok());
  EXPECT_NEAR(db.controller().Progress(), 0.5, 1e-9);

  // Completion drops the retired input; marks arriving after it (the
  // replica-side race with migrate_complete) are no-ops, not crashes.
  ASSERT_TRUE(db.controller().CompleteReplicatedMigration().ok());
  EXPECT_EQ(db.catalog().GetState("src"), TableState::kDropped);
  ASSERT_TRUE(
      db.controller().ApplyReplicatedMark(tracker, Tuple{Value::Int(1)}).ok());
  ASSERT_TRUE(db.controller().CompleteReplicatedMigration().ok());

  // Concurrent completion vs. mark storm: no tracker re-mark after the
  // controller dropped the state.
  std::atomic<bool> stop{false};
  std::thread marker([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)db.controller().ApplyReplicatedMark(
          tracker, Tuple{Value::Int(static_cast<int64_t>(i++ % 3))});
    }
  });
  for (int i = 0; i < 100; ++i) {
    (void)db.controller().CompleteReplicatedMigration();
  }
  stop.store(true, std::memory_order_release);
  marker.join();
}

// Satellite: the end-to-end acceptance test. A replica bootstraps from a
// live primary, 4 clients read from it (new schema, mid-migration) while
// the primary runs a wire-submitted lazy migration to completion; the
// replica rejects writes; both sides converge to an identical dump.
TEST(ReplicaE2ETest, ReadersDuringPrimaryMigrationConverge) {
  constexpr int kReaders = 4;
  constexpr int kRows = 600;

  Database primary_db;
  server::ServerConfig pconfig;
  pconfig.workers = 8;
  pconfig.migrate_options.lazy.background_start_delay_ms = 200;
  pconfig.migrate_options.lazy.background_threads = 2;
  pconfig.migrate_options.lazy.background_batch = 16;
  server::Server primary(&primary_db, pconfig);
  ASSERT_TRUE(primary.Start().ok());
  const std::string paddr = "127.0.0.1:" + std::to_string(primary.port());

  server::Client admin;
  ASSERT_TRUE(admin.Connect(paddr).ok());
  ASSERT_TRUE(
      admin.Query("CREATE TABLE accts (id INT PRIMARY KEY, bal INT)").ok());
  for (int base = 0; base < kRows;) {
    std::string sql = "INSERT INTO accts VALUES ";
    for (int i = 0; i < 100 && base < kRows; ++i, ++base) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(base) + ", " + std::to_string(base % 97) +
             ")";
    }
    auto r = admin.Query(sql);
    ASSERT_TRUE(r.ok()) << r.status();
  }

  // Replica: bootstrap from the live primary, then serve read-only.
  Database replica_db;
  ReplicaOptions ropts;
  ropts.primary = paddr;
  Replica replica(&replica_db, ropts);
  ASSERT_TRUE(replica.Start().ok());

  server::ServerConfig rconfig;
  rconfig.workers = 8;
  rconfig.read_only = true;
  rconfig.read_through = [&replica](const std::string& sql,
                                    const std::string& table) {
    return replica.ForwardRead(sql, table);
  };
  rconfig.admin_ext = [&replica](const std::string& command,
                                 std::string* out) {
    if (command != "replication") return false;
    *out = replica.StatusReport();
    return true;
  };
  server::Server rserver(&replica_db, rconfig);
  ASSERT_TRUE(rserver.Start().ok());
  const std::string raddr = "127.0.0.1:" + std::to_string(rserver.port());

  // Bootstrap state is immediately queryable.
  server::Client rc;
  ASSERT_TRUE(rc.Connect(raddr).ok());
  auto count = rc.Query("SELECT COUNT(*) AS n FROM accts");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->rows[0][0].AsInt(), kRows);

  // Writes and migrations are rejected with a clear error.
  auto write = rc.Query("INSERT INTO accts VALUES (999999, 1)");
  ASSERT_FALSE(write.ok());
  EXPECT_NE(write.status().message().find("read-only replica"),
            std::string::npos)
      << write.status();
  EXPECT_FALSE(rc.Migrate("CREATE TABLE nope PRIMARY KEY (id) AS "
                          "SELECT id FROM accts;")
                   .ok());

  // Kick off the lazy migration on the primary over the wire.
  ASSERT_TRUE(admin
                  .Migrate("CREATE TABLE accts_v2 PRIMARY KEY (id) AS "
                           "SELECT id, bal, bal * 2 AS dbl FROM accts;\n"
                           "DROP TABLE accts;")
                  .ok());

  // Wait until the migrate record reaches the replica (probe a key that
  // matches nothing, so the probe itself migrates no rows).
  {
    Stopwatch waited;
    for (;;) {
      auto probe = rc.Query("SELECT id FROM accts_v2 WHERE id = -1");
      if (probe.ok()) break;
      ASSERT_LT(waited.ElapsedSeconds(), 20.0)
          << "migrate record never applied: " << probe.status();
      Clock::SleepMillis(20);
    }
  }

  // 4 readers hit the replica's new schema while the migration drains on
  // the primary. Mid-migration reads forward to the primary (migrating
  // exactly the rows they need) and then wait for the marks to apply
  // locally; a transiently missing row is retried, a wrong value is a
  // real failure.
  std::atomic<int> failures{0};
  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int w = 0; w < kReaders; ++w) {
    readers.emplace_back([&, w] {
      server::Client c;
      if (!c.Connect(raddr).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t rng = 0x2545f4914f6cdd1dull * static_cast<uint64_t>(w + 1);
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int id = static_cast<int>((rng >> 33) % kRows);
        auto r = c.Query("SELECT id, bal, dbl FROM accts_v2 WHERE id = " +
                         std::to_string(id));
        if (!r.ok()) {
          if (!r.status().IsRetryable()) failures.fetch_add(1);
          continue;
        }
        if (r->rows.empty()) continue;  // Not applied yet; retried later.
        if (r->rows.size() != 1 ||
            r->rows[0][2].AsInt() != r->rows[0][1].AsInt() * 2) {
          failures.fetch_add(1);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Drive the primary's migration to a declared completion.
  Stopwatch waited;
  for (;;) {
    auto p = admin.MigrationProgress();
    ASSERT_TRUE(p.ok()) << p.status();
    if (*p >= 1.0) break;
    ASSERT_LT(waited.ElapsedSeconds(), 60.0) << "primary never reached 1.0";
    Clock::SleepMillis(25);
  }
  for (;;) {
    auto report = admin.Admin("report");
    ASSERT_TRUE(report.ok()) << report.status();
    if (report->find("complete=1") != std::string::npos) break;
    ASSERT_LT(waited.ElapsedSeconds(), 60.0) << "never declared complete";
    Clock::SleepMillis(25);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(ops.load(), 0u);

  // Convergence: the replica catches up to an identical logical state
  // (old table dropped, every row present with the same rid and values).
  for (;;) {
    if (DumpForDigest(&primary_db) == DumpForDigest(&replica_db)) break;
    ASSERT_LT(waited.ElapsedSeconds(), 90.0)
        << "replica never converged; status: " << replica.StatusReport();
    Clock::SleepMillis(50);
  }

  // Lag introspection reports a caught-up replica.
  auto status = rc.Admin("replication");
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_NE(status->find("role=replica"), std::string::npos) << *status;
  EXPECT_NE(status->find("behind=0"), std::string::npos) << *status;

  auto final_count = rc.Query("SELECT COUNT(*) AS n FROM accts_v2");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->rows[0][0].AsInt(), kRows);

  rserver.Stop();
  replica.Stop();
  primary.Stop();
}

}  // namespace
}  // namespace bullfrog::replication
