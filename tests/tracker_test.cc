#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "migration/bitmap_tracker.h"
#include "migration/hash_tracker.h"

namespace bullfrog {
namespace {

TEST(BitmapTrackerTest, InitialStateNotMigratedNotLocked) {
  BitmapTracker t("t", 100);
  EXPECT_EQ(t.num_granules(), 100u);
  for (uint64_t g = 0; g < 100; ++g) {
    EXPECT_FALSE(t.IsMigrated(g));
    EXPECT_FALSE(t.IsLocked(g));
  }
  EXPECT_EQ(t.MigratedCount(), 0u);
  EXPECT_FALSE(t.AllMigrated());
}

TEST(BitmapTrackerTest, Algorithm2StateMachine) {
  BitmapTracker t("t", 10);
  // [0 0] -> acquire -> [1 0].
  EXPECT_EQ(t.TryAcquire(3), AcquireResult::kAcquired);
  EXPECT_TRUE(t.IsLocked(3));
  EXPECT_FALSE(t.IsMigrated(3));
  // Second worker sees in-progress (Alg. 2 lines 2-4).
  EXPECT_EQ(t.TryAcquire(3), AcquireResult::kInProgress);
  // [1 0] -> commit -> [0 1].
  t.MarkMigrated(3);
  EXPECT_FALSE(t.IsLocked(3));
  EXPECT_TRUE(t.IsMigrated(3));
  // Migrated granules report so (Alg. 2 line 1/17).
  EXPECT_EQ(t.TryAcquire(3), AcquireResult::kAlreadyMigrated);
  EXPECT_EQ(t.MigratedCount(), 1u);
}

TEST(BitmapTrackerTest, AbortResetsToInitial) {
  BitmapTracker t("t", 10);
  ASSERT_EQ(t.TryAcquire(5), AcquireResult::kAcquired);
  t.ResetAborted(5);  // §3.5: back to [0 0].
  EXPECT_FALSE(t.IsLocked(5));
  EXPECT_FALSE(t.IsMigrated(5));
  // Another worker can now take over.
  EXPECT_EQ(t.TryAcquire(5), AcquireResult::kAcquired);
}

TEST(BitmapTrackerTest, ResetAbortedDoesNotClobberMigrated) {
  BitmapTracker t("t", 10);
  ASSERT_EQ(t.TryAcquire(1), AcquireResult::kAcquired);
  t.MarkMigrated(1);
  t.ResetAborted(1);  // Late abort hook of a stale worker: no effect.
  EXPECT_TRUE(t.IsMigrated(1));
  EXPECT_EQ(t.MigratedCount(), 1u);
}

TEST(BitmapTrackerTest, ForceMigratedIdempotent) {
  BitmapTracker t("t", 10);
  t.ForceMigrated(2);
  t.ForceMigrated(2);
  EXPECT_EQ(t.MigratedCount(), 1u);
  EXPECT_TRUE(t.IsMigrated(2));
}

TEST(BitmapTrackerTest, AllMigratedAfterEveryGranule) {
  BitmapTracker t("t", 65);  // Crosses a word boundary (32/word).
  for (uint64_t g = 0; g < t.num_granules(); ++g) {
    ASSERT_EQ(t.TryAcquire(g), AcquireResult::kAcquired);
    t.MarkMigrated(g);
  }
  EXPECT_TRUE(t.AllMigrated());
  EXPECT_EQ(t.MigratedCount(), 65u);
}

TEST(BitmapTrackerTest, NextUnmigratedSkipsMigratedAndLocked) {
  BitmapTracker t("t", 100);
  for (uint64_t g = 0; g < 50; ++g) {
    ASSERT_EQ(t.TryAcquire(g), AcquireResult::kAcquired);
    t.MarkMigrated(g);
  }
  ASSERT_EQ(t.TryAcquire(50), AcquireResult::kAcquired);  // Locked.
  EXPECT_EQ(t.NextUnmigrated(0), 51u);
  EXPECT_EQ(t.NextUnmigrated(0, /*include_locked=*/true), 50u);
  EXPECT_EQ(t.NextUnmigrated(60), 60u);
  EXPECT_EQ(t.NextUnmigrated(99), 99u);
  t.MarkMigrated(50);
  for (uint64_t g = 51; g < 100; ++g) {
    ASSERT_EQ(t.TryAcquire(g), AcquireResult::kAcquired);
    t.MarkMigrated(g);
  }
  EXPECT_EQ(t.NextUnmigrated(0), t.num_granules());
}

TEST(BitmapTrackerTest, RecoveryMarkSetsMigrated) {
  BitmapTracker t("t", 10);
  t.MarkMigratedFromLog(Tuple{Value::Int(4)});
  EXPECT_TRUE(t.IsMigrated(4));
  // Bad keys are ignored.
  t.MarkMigratedFromLog(Tuple{Value::Str("x")});
  t.MarkMigratedFromLog(Tuple{Value::Int(1000)});
  EXPECT_EQ(t.MigratedCount(), 1u);
}

class BitmapGranularityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitmapGranularityTest, GranuleMathCoversAllRows) {
  const uint64_t granularity = GetParam();
  const uint64_t rows = 1000;
  BitmapTracker t("t", rows, granularity);
  EXPECT_EQ(t.granularity(), granularity);
  EXPECT_EQ(t.num_granules(), (rows + granularity - 1) / granularity);
  // Every row belongs to exactly one granule whose range contains it.
  for (RowId rid = 0; rid < rows; ++rid) {
    const uint64_t g = t.GranuleOf(rid);
    ASSERT_LT(g, t.num_granules());
    ASSERT_GE(rid, t.GranuleBegin(g));
    ASSERT_LT(rid, t.GranuleEnd(g));
  }
  // Granule ranges tile [0, rows) without overlap.
  uint64_t covered = 0;
  for (uint64_t g = 0; g < t.num_granules(); ++g) {
    ASSERT_EQ(t.GranuleBegin(g), covered);
    covered = t.GranuleEnd(g);
  }
  EXPECT_EQ(covered, rows);
}

INSTANTIATE_TEST_SUITE_P(Granularities, BitmapGranularityTest,
                         ::testing::Values(1, 2, 7, 64, 128, 256, 1000,
                                           4096));

TEST(BitmapTrackerTest, ConcurrentAcquireIsExactlyOnce) {
  // The §3.3 guarantee: no granule is ever acquired by two workers, and
  // every granule is acquired exactly once across all workers.
  constexpr uint64_t kGranules = 5000;
  BitmapTracker t("t", kGranules);
  std::atomic<uint64_t> acquired{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&] {
      for (uint64_t g = 0; g < kGranules; ++g) {
        if (t.TryAcquire(g) == AcquireResult::kAcquired) {
          acquired.fetch_add(1, std::memory_order_relaxed);
          t.MarkMigrated(g);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(acquired.load(), kGranules);
  EXPECT_TRUE(t.AllMigrated());
}

TEST(BitmapTrackerTest, ConcurrentAcquireAbortHandoff) {
  // Workers repeatedly acquire, flip a coin, abort or migrate; eventually
  // every granule must end migrated with no [1 1] states.
  constexpr uint64_t kGranules = 2000;
  BitmapTracker t("t", kGranules);
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      uint64_t seed = static_cast<uint64_t>(w) * 2654435761u + 17;
      while (!t.AllMigrated()) {
        for (uint64_t g = 0; g < kGranules; ++g) {
          if (t.TryAcquire(g) != AcquireResult::kAcquired) continue;
          seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
          if ((seed >> 33) % 4 == 0) {
            t.ResetAborted(g);  // Simulated abort.
          } else {
            t.MarkMigrated(g);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.MigratedCount(), kGranules);
  for (uint64_t g = 0; g < kGranules; ++g) {
    ASSERT_TRUE(t.IsMigrated(g));
    ASSERT_FALSE(t.IsLocked(g)) << "[1 1] state must never occur";
  }
}

// --- HashTracker (§3.4 / Algorithm 3) ----------------------------------

Tuple Key(int64_t a) { return Tuple{Value::Int(a)}; }
Tuple Key2(int64_t a, int64_t b) {
  return Tuple{Value::Int(a), Value::Int(b)};
}

TEST(HashTrackerTest, Algorithm3StateMachine) {
  HashTracker t("h");
  EXPECT_FALSE(t.GetState(Key(1)).has_value());
  // Absent -> insert in-progress (lines 11-13).
  EXPECT_EQ(t.TryAcquire(Key(1)), AcquireResult::kAcquired);
  EXPECT_EQ(*t.GetState(Key(1)), GroupState::kInProgress);
  // In-progress -> skip (lines 5-6).
  EXPECT_EQ(t.TryAcquire(Key(1)), AcquireResult::kInProgress);
  // Commit -> migrated.
  t.MarkMigrated(Key(1));
  EXPECT_TRUE(t.IsMigrated(Key(1)));
  EXPECT_EQ(t.TryAcquire(Key(1)), AcquireResult::kAlreadyMigrated);
  EXPECT_EQ(t.MigratedCount(), 1u);
}

TEST(HashTrackerTest, AbortedStateClaimable) {
  HashTracker t("h");
  ASSERT_EQ(t.TryAcquire(Key(7)), AcquireResult::kAcquired);
  t.MarkAborted(Key(7));
  EXPECT_EQ(*t.GetState(Key(7)), GroupState::kAborted);
  // Lines 7-9: aborted -> re-acquire.
  EXPECT_EQ(t.TryAcquire(Key(7)), AcquireResult::kAcquired);
  EXPECT_EQ(*t.GetState(Key(7)), GroupState::kInProgress);
}

TEST(HashTrackerTest, MarkAbortedOnlyAffectsInProgress) {
  HashTracker t("h");
  ASSERT_EQ(t.TryAcquire(Key(1)), AcquireResult::kAcquired);
  t.MarkMigrated(Key(1));
  t.MarkAborted(Key(1));  // Stale abort hook: no effect.
  EXPECT_TRUE(t.IsMigrated(Key(1)));
  t.MarkAborted(Key(2));  // Unknown key: no effect.
  EXPECT_FALSE(t.GetState(Key(2)).has_value());
}

TEST(HashTrackerTest, CompositeKeysAreDistinct) {
  HashTracker t("h");
  ASSERT_EQ(t.TryAcquire(Key2(1, 2)), AcquireResult::kAcquired);
  EXPECT_EQ(t.TryAcquire(Key2(2, 1)), AcquireResult::kAcquired);
  EXPECT_EQ(t.TryAcquire(Key2(1, 2)), AcquireResult::kInProgress);
}

TEST(HashTrackerTest, ForceMigratedCountsOnce) {
  HashTracker t("h");
  t.ForceMigrated(Key(1));
  t.ForceMigrated(Key(1));
  ASSERT_EQ(t.TryAcquire(Key(2)), AcquireResult::kAcquired);
  t.ForceMigrated(Key(2));  // Upgrade from in-progress.
  EXPECT_EQ(t.MigratedCount(), 2u);
}

TEST(HashTrackerTest, RecoveryMark) {
  HashTracker t("h");
  t.MarkMigratedFromLog(Key2(3, 4));
  EXPECT_TRUE(t.IsMigrated(Key2(3, 4)));
}

TEST(HashTrackerTest, ConcurrentAcquireIsExactlyOnce) {
  HashTracker t("h", 16);
  constexpr int kKeys = 3000;
  std::atomic<int> acquired{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        if (t.TryAcquire(Key(k)) == AcquireResult::kAcquired) {
          acquired.fetch_add(1, std::memory_order_relaxed);
          t.MarkMigrated(Key(k));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(acquired.load(), kKeys);
  EXPECT_EQ(t.MigratedCount(), static_cast<uint64_t>(kKeys));
}

TEST(HashTrackerTest, ConcurrentAbortHandoffConverges) {
  HashTracker t("h", 16);
  constexpr int kKeys = 1000;
  std::atomic<int> migrated{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      uint64_t seed = static_cast<uint64_t>(w) + 3;
      while (migrated.load(std::memory_order_acquire) < kKeys) {
        for (int k = 0; k < kKeys; ++k) {
          if (t.TryAcquire(Key(k)) != AcquireResult::kAcquired) continue;
          seed = seed * 6364136223846793005ULL + 1;
          if ((seed >> 40) % 3 == 0) {
            t.MarkAborted(Key(k));
          } else {
            t.MarkMigrated(Key(k));
            migrated.fetch_add(1, std::memory_order_acq_rel);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.MigratedCount(), static_cast<uint64_t>(kKeys));
}

// --- edge cases: recovery keys, abort-vs-force races, reacquire ---------

TEST(BitmapTrackerTest, RecoveryMarkIgnoresMalformedKeys) {
  BitmapTracker t("t", 100);
  // Out-of-range granule: the redo log may hold marks written under a
  // larger pre-crash boundary; they must be dropped, not crash.
  t.MarkMigratedFromLog(Tuple{Value::Int(100)});
  t.MarkMigratedFromLog(Tuple{Value::Int(1u << 30)});
  // Wrong type / wrong arity: a hash-tracker mark replayed against a
  // bitmap tracker (id collision across migrations) must be a no-op.
  t.MarkMigratedFromLog(Tuple{Value::Str("7")});
  t.MarkMigratedFromLog(Tuple{});
  t.MarkMigratedFromLog(Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_EQ(t.MigratedCount(), 0u);
  for (uint64_t g = 0; g < t.num_granules(); ++g) {
    EXPECT_FALSE(t.IsMigrated(g));
  }
  // A well-formed mark still lands.
  t.MarkMigratedFromLog(Tuple{Value::Int(99)});
  EXPECT_TRUE(t.IsMigrated(99));
  EXPECT_EQ(t.MigratedCount(), 1u);
}

TEST(BitmapTrackerTest, ResetAbortedVsConcurrentForceMigrated) {
  // An aborting worker resets its granule while recovery (or ON CONFLICT
  // mode) force-marks the same granule: whatever the interleaving, the
  // granule must end migrated+unlocked and be counted exactly once.
  constexpr uint64_t kGranules = 512;
  BitmapTracker t("t", kGranules);
  for (uint64_t g = 0; g < kGranules; ++g) {
    ASSERT_EQ(t.TryAcquire(g), AcquireResult::kAcquired);
  }
  std::thread resetter([&] {
    for (uint64_t g = 0; g < kGranules; ++g) t.ResetAborted(g);
  });
  std::thread forcer([&] {
    for (uint64_t g = kGranules; g-- > 0;) t.ForceMigrated(g);
  });
  resetter.join();
  forcer.join();
  for (uint64_t g = 0; g < kGranules; ++g) {
    EXPECT_TRUE(t.IsMigrated(g)) << g;
    EXPECT_FALSE(t.IsLocked(g)) << g;
    EXPECT_EQ(t.TryAcquire(g), AcquireResult::kAlreadyMigrated) << g;
  }
  EXPECT_EQ(t.MigratedCount(), kGranules);
  EXPECT_TRUE(t.AllMigrated());
}

TEST(HashTrackerTest, AbortedReacquireUnderContention) {
  // Algorithm 3 lines 7-9: an aborted group is claimable by exactly one
  // of many contending workers per round.
  HashTracker t("h", 4);
  const Tuple key = Key(42);
  ASSERT_EQ(t.TryAcquire(key), AcquireResult::kAcquired);
  constexpr int kRounds = 200;
  constexpr int kWorkers = 8;
  for (int round = 0; round < kRounds; ++round) {
    t.MarkAborted(key);
    ASSERT_EQ(t.GetState(key), GroupState::kAborted);
    std::atomic<int> winners{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&] {
        if (t.TryAcquire(key) == AcquireResult::kAcquired) {
          winners.fetch_add(1, std::memory_order_acq_rel);
        }
      });
    }
    for (auto& th : workers) th.join();
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    ASSERT_EQ(t.GetState(key), GroupState::kInProgress);
  }
  // The final owner commits; the group is terminal.
  t.MarkMigrated(key);
  EXPECT_EQ(t.MigratedCount(), 1u);
  EXPECT_EQ(t.TryAcquire(key), AcquireResult::kAlreadyMigrated);
  // A late abort from a stale worker must not clobber the migrated state.
  t.MarkAborted(key);
  EXPECT_EQ(t.GetState(key), GroupState::kMigrated);
}

}  // namespace
}  // namespace bullfrog
